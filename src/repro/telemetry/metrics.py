"""Metric instruments and the registry that owns them.

Three deterministic instrument kinds (their values are pure functions of
the simulation, never of wall-clock time):

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — last-written (or high-water) scalar;
* :class:`Histogram` — fixed, pre-declared bucket boundaries so two runs
  (or two worker processes) always produce structurally identical
  distributions that merge by adding bucket counts.

Plus one *profiling* instrument, :meth:`MetricsRegistry.span`, which
aggregates **wall-clock** time per label.  Spans are deliberately kept in
their own snapshot section: they are non-deterministic by nature and must
never leak into cached trial results (see ``snapshot(spans=False)``).

The zero-cost story: hot paths fetch their instrument objects **once** (at
construction time) and call ``inc()`` / ``observe()`` on them.  When
telemetry is disabled the registry is a :class:`NullRegistry`, which hands
out shared do-nothing instruments — no dict lookups, no allocation, no
branching in the instrumented code.
"""

from __future__ import annotations

import bisect
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written scalar with an optional high-water helper."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the largest value ever written (high-water mark)."""
        if value > self.value:
            self.value = float(value)


class Histogram:
    """Fixed-boundary histogram: ``len(bounds) + 1`` buckets plus sum/count.

    ``bounds`` are upper bounds of the finite buckets; observations above
    the last bound land in the overflow bucket.  Boundaries are part of the
    exported snapshot, so two histograms only merge when they agree.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Sequence[float]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} needs sorted, non-empty bounds")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1


class _Span:
    """Context manager timing one ``with`` block into a span aggregate."""

    __slots__ = ("_registry", "_label", "_start")

    def __init__(self, registry: "MetricsRegistry", label: str):
        self._registry = registry
        self._label = label
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._registry.observe_span(self._label, time.perf_counter() - self._start)


class MetricsRegistry:
    """Owns every instrument of one run and renders snapshots.

    Instruments are created on first access and cached by name, so
    ``registry.counter("x")`` is a cheap dict hit afterwards — but hot
    paths should still fetch the object once and keep a reference.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: Dict[str, List[float]] = {}  # label -> [total_s, calls]

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        elif instrument.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{instrument.bounds}, got {tuple(bounds)}"
            )
        return instrument

    def span(self, label: str) -> _Span:
        """``with registry.span("detector.classify"): ...`` wall-time timer."""
        return _Span(self, label)

    def observe_span(self, label: str, seconds: float, calls: int = 1) -> None:
        cell = self._spans.get(label)
        if cell is None:
            self._spans[label] = [float(seconds), calls]
        else:
            cell[0] += seconds
            cell[1] += calls

    # ------------------------------------------------------------------
    # Component helpers (no-ops on NullRegistry)
    # ------------------------------------------------------------------
    def record_sim(self, sim: Any) -> None:
        """Publish a finished :class:`~repro.sim.engine.Simulator`'s stats.

        Event and queue statistics are deterministic; the wall-clock time
        the event loop consumed goes into the span section (profiling).
        ``sim.queue_hwm`` is the *pending* high-water mark — cancelled
        events awaiting lazy removal are excluded, so the gauge reports
        real queue depth rather than the lazy-cancellation artifact it
        used to include.  ``sim.compactions`` counts threshold-triggered
        rebuilds that evicted cancelled entries.
        """
        self.counter("sim.events_executed").inc(sim.events_processed)
        self.gauge("sim.queue_hwm").set_max(sim.queue_hwm)
        self.gauge("sim.time_s").set_max(sim.now)
        compactions = getattr(sim, "compactions", 0)
        if compactions:
            self.counter("sim.queue_compactions").inc(compactions)
        if sim.wall_time > 0.0:
            self.observe_span("sim.run", sim.wall_time)

    def record_faults(self, harness: Any) -> None:
        """Fold a fault harness's per-concern injection counts in."""
        for name, value in harness.counters().items():
            self.counter(f"faults.{name}").inc(int(value))

    # ------------------------------------------------------------------
    # Snapshots and merging
    # ------------------------------------------------------------------
    def snapshot(self, spans: bool = True) -> Dict[str, Any]:
        """Plain-dict view of every instrument.

        ``spans=False`` drops the wall-clock section — that form is what
        sweep trials attach to cacheable records, so cached metric values
        stay bitwise-reproducible.
        """
        snap: Dict[str, Any] = {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for n, h in sorted(self._histograms.items())
            },
        }
        if spans:
            snap["spans"] = {
                label: {"total_s": cell[0], "calls": int(cell[1])}
                for label, cell in sorted(self._spans.items())
            }
        return snap

    def merge(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Fold another registry's snapshot into this one.

        Counters, histogram buckets, and span totals add; gauges keep the
        maximum (the only order-independent reduction for high-water-style
        gauges, which is what every built-in gauge is).
        """
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set_max(float(value))
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, data["bounds"])
            if len(hist.counts) != len(data["counts"]):
                raise ValueError(f"histogram {name!r} bucket count mismatch")
            for i, n in enumerate(data["counts"]):
                hist.counts[i] += int(n)
            hist.total += float(data["sum"])
            hist.count += int(data["count"])
        for label, data in snapshot.get("spans", {}).items():
            self.observe_span(label, float(data["total_s"]), int(data["calls"]))

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._spans.clear()

    def __bool__(self) -> bool:
        return True


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram/span."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """Telemetry disabled: every access returns the shared no-op instrument.

    Instrumented code holds references to these and calls through without
    any conditional — disabling telemetry costs one no-op method call at
    the few instrumented call sites and nothing anywhere else.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Any:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> Any:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds: Sequence[float]) -> Any:
        return _NULL_INSTRUMENT

    def span(self, label: str) -> Any:
        return _NULL_INSTRUMENT

    def observe_span(self, label: str, seconds: float, calls: int = 1) -> None:
        pass

    def record_sim(self, sim: Any) -> None:
        pass

    def record_faults(self, harness: Any) -> None:
        pass

    def merge(self, snapshot: Optional[Dict[str, Any]]) -> None:
        pass

    def __bool__(self) -> bool:
        return False


def merge_snapshots(snapshots: Sequence[Optional[Dict[str, Any]]]) -> Dict[str, Any]:
    """Merge trial snapshots (``None`` entries skipped) into one snapshot."""
    registry = MetricsRegistry()
    for snap in snapshots:
        registry.merge(snap)
    return registry.snapshot(spans=True)

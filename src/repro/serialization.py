"""Config serialization: nested dataclasses ↔ plain dicts / JSON.

Experiments are parameterized by nested dataclasses (`CoexistenceConfig`
holding a `Calibration` and a `BicordConfig` holding detector/allocator/
signaling sections).  For reproducibility manifests and the CLI's
``--config`` option we need to round-trip them through JSON without
hand-written (de)serializers per class.

Only what the configs actually use is supported: dataclasses, numbers,
strings, booleans, None, and lists/tuples/dicts of those.  Unknown keys are
rejected loudly — a typo in a config file must not silently fall back to a
default.

The same machinery powers the sweep cache (:mod:`repro.experiments.sweep`):
`canonical_dumps` renders any supported object to a byte-stable JSON string
(sorted keys, no whitespace) and `stable_hash` turns that into a content
address, so equal configs always map to the same cache entry across
processes and interpreter runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Type, TypeVar, Union, get_args, get_origin, get_type_hints

T = TypeVar("T")


def to_dict(obj: Any) -> Any:
    """Recursively convert dataclasses to plain dicts (JSON-ready)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_dict(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {key: to_dict(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_dict(item) for item in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if type(obj).__module__ == "numpy":
        # numpy scalars (and small arrays) leak into results via np.mean etc.
        if getattr(obj, "ndim", None) == 0:
            return to_dict(obj.item())
        if callable(getattr(obj, "tolist", None)):
            return to_dict(obj.tolist())
    raise TypeError(f"cannot serialize {type(obj).__name__}: {obj!r}")


def from_dict(cls: Type[T], data: Dict[str, Any]) -> T:
    """Build a dataclass of type ``cls`` from a plain dict.

    Nested dataclass fields are reconstructed recursively; extra keys raise
    ``ValueError``; missing keys fall back to the dataclass defaults.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    if not isinstance(data, dict):
        raise TypeError(f"expected a dict for {cls.__name__}, got {type(data).__name__}")
    hints = get_type_hints(cls)
    field_names = {field.name for field in dataclasses.fields(cls)}
    unknown = set(data) - field_names
    if unknown:
        raise ValueError(
            f"unknown key(s) for {cls.__name__}: {sorted(unknown)} "
            f"(valid: {sorted(field_names)})"
        )
    kwargs: Dict[str, Any] = {}
    for field in dataclasses.fields(cls):
        if field.name not in data:
            continue
        value = data[field.name]
        target = hints.get(field.name, None)
        kwargs[field.name] = _coerce(target, value)
    return cls(**kwargs)  # type: ignore[return-value]


def _coerce(target: Any, value: Any) -> Any:
    if target is not None and dataclasses.is_dataclass(target):
        return from_dict(target, value)
    origin = get_origin(target)
    if origin is Union:
        # Optional[X] (and small unions): coerce through the first matching arm.
        if value is None:
            return None
        inner = [arg for arg in get_args(target) if arg is not type(None)]
        if len(inner) == 1:
            return _coerce(inner[0], value)
        return value
    if origin in (list, tuple) and isinstance(value, list):
        args = get_args(target)
        inner = args[0] if args else None
        items = [_coerce(inner, item) for item in value]
        return tuple(items) if origin is tuple else items
    if origin is dict and isinstance(value, dict):
        args = get_args(target)
        if len(args) == 2:
            # Typed dicts (e.g. Dict[str, LinkResult]) coerce their values so
            # dataclass-valued results round-trip through the sweep cache.
            return {key: _coerce(args[1], item) for key, item in value.items()}
        return dict(value)
    return value


def dumps(obj: Any, **kwargs: Any) -> str:
    """Serialize a (nested) dataclass to a JSON string."""
    kwargs.setdefault("indent", 2)
    kwargs.setdefault("sort_keys", True)
    return json.dumps(to_dict(obj), **kwargs)


def loads(cls: Type[T], text: str) -> T:
    """Deserialize a JSON string into a dataclass of type ``cls``."""
    return from_dict(cls, json.loads(text))


def canonical_dumps(obj: Any) -> str:
    """Byte-stable JSON rendering: sorted keys, no whitespace.

    Two structurally-equal objects (dataclass instances, dicts, lists, ...)
    always render to the identical string, which makes the output safe to
    hash and to compare across processes.
    """
    return json.dumps(to_dict(obj), sort_keys=True, separators=(",", ":"))


def stable_hash(obj: Any, length: int = 64) -> str:
    """Content address of ``obj``: SHA-256 over its canonical JSON form."""
    digest = hashlib.sha256(canonical_dumps(obj).encode("utf-8")).hexdigest()
    return digest[:length]

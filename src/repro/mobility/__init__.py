"""Mobility subsystem: trajectory models, roaming clients, AP selection.

Two halves, both consumed by the scenario compiler and usable directly:

* :mod:`.trajectory` — time-parameterized paths (explicit waypoints,
  seeded random-waypoint) plus :class:`TrajectoryProcess`, which applies
  them to radios through :meth:`repro.phy.medium.Medium.move_many` at a
  fixed tick (one channel invalidation per tick, however many radios move);
* :mod:`.roaming` — per-client multi-AP association state with pluggable
  :class:`APSelectionPolicy` implementations, handoff-gap accounting as
  MAC events, and ``roam.*`` telemetry counters.
"""

from .roaming import (
    AP_SELECTION_POLICIES,
    APReading,
    APSelectionPolicy,
    RoamingClient,
    StickyPolicy,
    StrongestRssiPolicy,
    ap_selection_policy_names,
    make_ap_selection_policy,
    register_ap_selection_policy,
)
from .trajectory import (
    RandomWaypointTrajectory,
    Trajectory,
    TrajectoryProcess,
    WaypointTrajectory,
)

__all__ = [
    "AP_SELECTION_POLICIES",
    "APReading",
    "APSelectionPolicy",
    "RandomWaypointTrajectory",
    "RoamingClient",
    "StickyPolicy",
    "StrongestRssiPolicy",
    "Trajectory",
    "TrajectoryProcess",
    "WaypointTrajectory",
    "ap_selection_policy_names",
    "make_ap_selection_policy",
    "register_ap_selection_policy",
]

"""Trajectory models and the process that drives radios along them.

A :class:`Trajectory` is a pure function of time: ``position_at(t)`` returns
the (x, y) a rider occupies ``t`` seconds after the trajectory starts.  Two
models ship:

* :class:`WaypointTrajectory` — a piecewise-linear path through explicit
  waypoints with one speed per leg (or a shared speed), optionally closed
  into a loop;
* :class:`RandomWaypointTrajectory` — the classic random-waypoint model,
  seeded through its own ``numpy`` generator so the path is a deterministic
  function of the seed and never perturbs the simulation's RNG streams.

:class:`TrajectoryProcess` samples a trajectory at a fixed tick and applies
the positions through :meth:`repro.phy.medium.Medium.move_many`, so each
tick costs one channel-gain invalidation no matter how many radios ride
the trajectory.  Both medium kernels already key their link state on the
channel's position epoch, which is exactly what the move advances.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..phy.propagation import Position
from ..sim.process import Process

Point = Tuple[float, float]


class Trajectory:
    """A time-parameterized path: ``position_at(t)`` in meters."""

    def position_at(self, t: float) -> Point:
        raise NotImplementedError

    @property
    def end_time(self) -> Optional[float]:
        """Time the path ends and the rider parks, or ``None`` if endless."""
        return None


class WaypointTrajectory(Trajectory):
    """A piecewise-linear path through waypoints at per-leg speeds.

    ``leg_speeds`` (m/s) must match the number of legs when given — a loop
    adds one closing leg back to the first waypoint — otherwise every leg
    runs at ``speed_mps``.  A non-loop path parks at its last waypoint; a
    loop repeats forever.
    """

    def __init__(
        self,
        waypoints: Sequence[Point],
        speed_mps: float = 1.0,
        leg_speeds: Sequence[float] = (),
        loop: bool = False,
    ):
        points: List[Point] = [(float(x), float(y)) for x, y in waypoints]
        if len(points) < 2:
            raise ValueError(
                f"a waypoint trajectory needs >= 2 waypoints, got {len(points)}"
            )
        if loop and points[-1] != points[0]:
            points.append(points[0])
        n_legs = len(points) - 1
        if leg_speeds:
            speeds = [float(s) for s in leg_speeds]
            if len(speeds) != n_legs:
                raise ValueError(
                    f"leg_speeds must have one entry per leg ({n_legs}, loops "
                    f"include the closing leg), got {len(speeds)}"
                )
        else:
            speeds = [float(speed_mps)] * n_legs
        if any(s <= 0.0 for s in speeds):
            raise ValueError(f"leg speeds must be > 0, got {speeds}")
        self.loop = bool(loop)
        self._points = points
        #: Cumulative arrival time at each point (``_times[0] == 0``).
        self._times = [0.0]
        for (ax, ay), (bx, by), speed in zip(points, points[1:], speeds):
            self._times.append(self._times[-1] + math.hypot(bx - ax, by - ay) / speed)
        self._total = self._times[-1]
        if self.loop and self._total <= 0.0:
            raise ValueError("a looped trajectory must have non-zero length")

    @property
    def end_time(self) -> Optional[float]:
        return None if self.loop else self._total

    @property
    def path_time(self) -> float:
        """Seconds one full traversal takes (the loop period when looped)."""
        return self._total

    def position_at(self, t: float) -> Point:
        t = float(t)
        if self._total <= 0.0 or t <= 0.0:
            return self._points[0]
        if self.loop:
            t = t % self._total
        elif t >= self._total:
            return self._points[-1]
        i = min(bisect_right(self._times, t) - 1, len(self._points) - 2)
        t0, t1 = self._times[i], self._times[i + 1]
        frac = (t - t0) / (t1 - t0) if t1 > t0 else 0.0
        (ax, ay), (bx, by) = self._points[i], self._points[i + 1]
        return (ax + frac * (bx - ax), ay + frac * (by - ay))


class RandomWaypointTrajectory(Trajectory):
    """Random-waypoint motion inside a rectangle, from a dedicated seed.

    The rider repeatedly draws a uniform target inside ``origin + area``,
    walks to it at ``speed_mps``, and pauses ``pause`` seconds.  Segments
    are materialized lazily as ``position_at`` asks for later times, so the
    model is endless but still a deterministic function of ``seed``.
    """

    def __init__(
        self,
        area: Point = (30.0, 10.0),
        speed_mps: float = 1.5,
        pause: float = 0.0,
        seed: int = 0,
        origin: Point = (0.0, 0.0),
    ):
        if area[0] <= 0.0 or area[1] <= 0.0:
            raise ValueError(f"area sides must be > 0, got {area}")
        if speed_mps <= 0.0:
            raise ValueError(f"speed_mps must be > 0, got {speed_mps}")
        if pause < 0.0:
            raise ValueError(f"pause must be >= 0, got {pause}")
        self._area = (float(area[0]), float(area[1]))
        self._origin = (float(origin[0]), float(origin[1]))
        self._speed = float(speed_mps)
        self._pause = float(pause)
        self._rng = np.random.default_rng(int(seed))
        #: (t0, t1, a, b) segments; a pause is a segment with ``a == b``.
        self._segments: List[Tuple[float, float, Point, Point]] = []
        self._starts: List[float] = []
        self._cursor_time = 0.0
        self._cursor_pos = self._draw()

    def _draw(self) -> Point:
        ox, oy = self._origin
        w, h = self._area
        return (
            float(self._rng.uniform(ox, ox + w)),
            float(self._rng.uniform(oy, oy + h)),
        )

    def _extend_to(self, t: float) -> None:
        while self._cursor_time <= t:
            target = self._draw()
            ax, ay = self._cursor_pos
            dur = math.hypot(target[0] - ax, target[1] - ay) / self._speed
            if dur > 0.0:
                self._starts.append(self._cursor_time)
                self._segments.append(
                    (self._cursor_time, self._cursor_time + dur, self._cursor_pos, target)
                )
                self._cursor_time += dur
                self._cursor_pos = target
            if self._pause > 0.0:
                self._starts.append(self._cursor_time)
                self._segments.append(
                    (self._cursor_time, self._cursor_time + self._pause, target, target)
                )
                self._cursor_time += self._pause

    def position_at(self, t: float) -> Point:
        t = max(0.0, float(t))
        self._extend_to(t)
        i = max(0, bisect_right(self._starts, t) - 1)
        t0, t1, (ax, ay), (bx, by) = self._segments[i]
        frac = (t - t0) / (t1 - t0) if t1 > t0 else 0.0
        frac = min(1.0, frac)
        return (ax + frac * (bx - ax), ay + frac * (by - ay))


class TrajectoryProcess:
    """Drive radios along a trajectory at a fixed tick.

    Every ``tick`` seconds the process samples ``trajectory.position_at(now)``
    and relocates all riders in one :meth:`~repro.phy.medium.Medium.move_many`
    batch — a single position-epoch advance per tick regardless of rider
    count.  ``offsets`` keeps a formation apart (each rider sits at the
    sampled point plus its own (dx, dy)).  A finite trajectory parks its
    riders at the final waypoint and ends; endless trajectories tick until
    stopped.
    """

    def __init__(
        self,
        ctx,
        radios: Iterable,
        trajectory: Trajectory,
        tick: float = 0.1,
        offsets: Optional[Sequence[Point]] = None,
        name: str = "trajectory",
    ):
        if tick <= 0.0:
            raise ValueError(f"tick must be > 0, got {tick}")
        self.ctx = ctx
        self.radios = list(radios)
        if not self.radios:
            raise ValueError("a trajectory needs at least one radio to move")
        if offsets is None:
            offsets = [(0.0, 0.0)] * len(self.radios)
        if len(offsets) != len(self.radios):
            raise ValueError(
                f"{len(self.radios)} radios but {len(offsets)} offsets"
            )
        self.offsets = [(float(dx), float(dy)) for dx, dy in offsets]
        self.trajectory = trajectory
        self.tick = float(tick)
        #: Number of move batches applied so far (one per tick).
        self.ticks_applied = 0
        self._process = Process(ctx.sim, self._run(), name=name)

    def _run(self):
        sim = self.ctx.sim
        medium = self.ctx.medium
        trajectory = self.trajectory
        while True:
            x, y = trajectory.position_at(sim.now)
            medium.move_many(
                (radio, Position(x + dx, y + dy))
                for radio, (dx, dy) in zip(self.radios, self.offsets)
            )
            self.ticks_applied += 1
            end = trajectory.end_time
            if end is not None and sim.now >= end:
                return
            yield self.tick

    def stop(self) -> None:
        self._process.stop()

    @property
    def running(self) -> bool:
        return self._process.running

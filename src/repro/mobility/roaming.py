"""Multi-AP association state, AP-selection policies, and handoff accounting.

A :class:`RoamingClient` binds one Wi-Fi client to the AP set of an ESS.
It scans at a fixed interval using the channel's *mean* received power —
deterministic path loss + per-pair shadowing, no fading draw, so scanning
never perturbs any link's RNG stream — and hands the readings to a
pluggable :class:`APSelectionPolicy`.  A reassociation is modeled as MAC
events: the client suppresses its own transmissions for the handoff gap
(scan/auth/assoc airtime it cannot use) and queues a small management
frame to the new AP, then the ``on_associate`` callback retargets the
client's traffic.

Policies are pure decision functions registered by name
(:data:`AP_SELECTION_POLICIES`); ship: ``strongest-rssi`` (with a
hysteresis margin that damps ping-pong) and ``sticky`` (stay until the
serving AP drops below a floor).  Telemetry counters ``roam.handoffs``,
``roam.gap_ms``, ``roam.pingpongs``, and ``roam.scans`` report through the
active :mod:`repro.telemetry` registry.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..mac.frames import wifi_mgmt_frame
from ..sim.process import Process


class APReading(NamedTuple):
    """One scan sample: AP name and mean RSSI at the client (dBm)."""

    name: str
    rssi_dbm: float


class APSelectionPolicy:
    """Contract for AP selection.

    ``select(current, readings)`` returns the name of the AP the client
    should be associated with; returning ``current`` means stay.  Policies
    must be pure (no side effects, no randomness): the same readings must
    always produce the same decision, so runs stay reproducible and both
    medium kernels see identical handoff sequences.
    """

    name = "base"

    def select(self, current: str, readings: Sequence[APReading]) -> str:
        raise NotImplementedError


class StrongestRssiPolicy(APSelectionPolicy):
    """Roam to the strongest AP once it clears a hysteresis margin.

    The margin (dB) damps ping-pong at cell edges: the challenger must beat
    the serving AP by ``hysteresis_db``, not merely tie it.  If the serving
    AP is absent from the readings the client joins the strongest outright.
    """

    name = "strongest-rssi"

    def __init__(self, hysteresis_db: float = 4.0):
        if hysteresis_db < 0.0:
            raise ValueError(f"hysteresis_db must be >= 0, got {hysteresis_db}")
        self.hysteresis_db = float(hysteresis_db)

    def select(self, current: str, readings: Sequence[APReading]) -> str:
        if not readings:
            return current
        best = max(readings, key=lambda r: r.rssi_dbm)
        if best.name == current:
            return current
        serving = next((r.rssi_dbm for r in readings if r.name == current), None)
        if serving is None or best.rssi_dbm >= serving + self.hysteresis_db:
            return best.name
        return current


class StickyPolicy(APSelectionPolicy):
    """Stay on the serving AP until it drops below an RSSI floor.

    The baseline most stacks implement: no proactive roaming at all — only
    when the serving AP falls under ``min_rssi_dbm`` does the client move,
    and then to the strongest candidate.
    """

    name = "sticky"

    def __init__(self, min_rssi_dbm: float = -75.0):
        self.min_rssi_dbm = float(min_rssi_dbm)

    def select(self, current: str, readings: Sequence[APReading]) -> str:
        if not readings:
            return current
        serving = next((r.rssi_dbm for r in readings if r.name == current), None)
        if serving is not None and serving >= self.min_rssi_dbm:
            return current
        return max(readings, key=lambda r: r.rssi_dbm).name


#: name -> policy factory.  Factories take keyword parameters;
#: :func:`make_ap_selection_policy` filters its kwargs by signature so one
#: spec can carry the union of all policies' knobs.
AP_SELECTION_POLICIES: Dict[str, Callable[..., APSelectionPolicy]] = {}


def register_ap_selection_policy(
    name: str, factory: Callable[..., APSelectionPolicy]
) -> None:
    """Register (or replace) a policy factory under ``name``."""
    AP_SELECTION_POLICIES[name] = factory


def ap_selection_policy_names() -> Tuple[str, ...]:
    return tuple(sorted(AP_SELECTION_POLICIES))


def make_ap_selection_policy(name: str, **params) -> APSelectionPolicy:
    """Instantiate a registered policy, keeping only the kwargs it accepts."""
    try:
        factory = AP_SELECTION_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown AP-selection policy {name!r}; "
            f"available: {', '.join(ap_selection_policy_names())}"
        ) from None
    allowed = set(inspect.signature(factory).parameters)
    return factory(**{k: v for k, v in params.items() if k in allowed})


register_ap_selection_policy(StrongestRssiPolicy.name, StrongestRssiPolicy)
register_ap_selection_policy(StickyPolicy.name, StickyPolicy)


class RoamingClient:
    """Association state of one Wi-Fi client across the APs of an ESS.

    At construction the client associates to the strongest AP (power-on
    scan — no handoff counted, no gap).  Thereafter a scan every
    ``scan_interval`` seconds feeds the policy; when it picks a different
    AP the client reassociates: ``handoff_gap`` seconds of self-suppression
    on the MAC, one management frame to the new AP, counters, and the
    ``on_associate`` callback (which the scenario compiler uses to retarget
    the client's traffic source).  A handoff back to the AP just left
    within ``pingpong_window`` seconds also counts as a ping-pong.
    """

    def __init__(
        self,
        ctx,
        client,
        aps: Sequence,
        policy: APSelectionPolicy,
        scan_interval: float = 0.25,
        handoff_gap: float = 30e-3,
        pingpong_window: float = 2.0,
        on_associate: Optional[Callable[[str], None]] = None,
        name: str = "",
    ):
        if not aps:
            raise ValueError("a roaming client needs at least one AP")
        if scan_interval <= 0.0:
            raise ValueError(f"scan_interval must be > 0, got {scan_interval}")
        if handoff_gap < 0.0:
            raise ValueError(f"handoff_gap must be >= 0, got {handoff_gap}")
        self.ctx = ctx
        self.client = client
        self.aps = list(aps)
        self.policy = policy
        self.scan_interval = float(scan_interval)
        self.handoff_gap = float(handoff_gap)
        self.pingpong_window = float(pingpong_window)
        self.on_associate = on_associate

        registry = ctx.telemetry
        self._handoff_counter = registry.counter("roam.handoffs")
        self._gap_counter = registry.counter("roam.gap_ms")
        self._pingpong_counter = registry.counter("roam.pingpongs")
        self._scan_counter = registry.counter("roam.scans")

        self.handoffs = 0
        self.pingpongs = 0
        self.scans = 0
        self.gap_s = 0.0
        #: (time, from_ap, to_ap) per handoff, in order.
        self.handoff_log: List[Tuple[float, str, str]] = []
        self._prev_ap: Optional[str] = None
        self._last_handoff_at = -float("inf")

        readings = self.scan()
        self.current_ap = max(readings, key=lambda r: r.rssi_dbm).name
        if self.on_associate is not None:
            self.on_associate(self.current_ap)
        self._process = Process(
            ctx.sim,
            self._run(),
            start_delay=self.scan_interval,
            name=name or f"roaming/{client.name}",
        )

    # ------------------------------------------------------------------
    def scan(self) -> List[APReading]:
        """Mean RSSI of every AP at the client's current position.

        Uses :meth:`Channel.mean_rx_power_dbm` — path loss plus the cached
        per-pair shadowing term, *no* per-frame fading draw — so a scan is
        deterministic and consumes nothing from any fading stream.
        """
        channel = self.ctx.medium.channel
        radio = self.client.radio
        return [
            APReading(
                ap.name,
                channel.mean_rx_power_dbm(
                    ap.mac.tx_power_dbm, ap.name, ap.radio.position,
                    radio.name, radio.position,
                ),
            )
            for ap in self.aps
        ]

    def _run(self):
        while True:
            readings = self.scan()
            self.scans += 1
            self._scan_counter.inc()
            target = self.policy.select(self.current_ap, readings)
            if target != self.current_ap:
                self._reassociate(target)
            yield self.scan_interval

    def _reassociate(self, target: str) -> None:
        now = self.ctx.sim.now
        previous = self.current_ap
        self.handoffs += 1
        self._handoff_counter.inc()
        if (
            target == self._prev_ap
            and now - self._last_handoff_at <= self.pingpong_window
        ):
            self.pingpongs += 1
            self._pingpong_counter.inc()
        self._prev_ap = previous
        self._last_handoff_at = now
        self.current_ap = target
        self.gap_s += self.handoff_gap
        self._gap_counter.inc(int(round(self.handoff_gap * 1e3)))
        self.handoff_log.append((now, previous, target))
        mac = self.client.mac
        if self.handoff_gap > 0.0:
            mac.suppress_until(now + self.handoff_gap)
        mac.enqueue_front(
            wifi_mgmt_frame(
                self.client.name, target, mac.basic_rate,
                created_at=now, reassoc_from=previous,
            )
        )
        self.ctx.trace.record(
            now, "roam.handoff",
            client=self.client.name, frm=previous, to=target,
        )
        if self.on_associate is not None:
            self.on_associate(target)

    def stop(self) -> None:
        self._process.stop()

    @property
    def gap_ms(self) -> float:
        """Total handoff-gap time spent, in milliseconds."""
        return self.gap_s * 1e3

"""One-stop logging setup for the whole package.

Library modules emit through ``repro.log.get_logger(...)`` (a child of the
``repro`` logger) instead of printing; nothing is shown unless the
application configures logging.  The CLI calls :func:`configure` exactly
once from its verbosity flags:

* ``--quiet``  -> WARNING (progress lines suppressed)
* default      -> INFO    (sweep progress, experiment notes)
* ``-v``       -> DEBUG   (per-stage detail, trace collection, cache keys)
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

_ROOT_NAME = "repro"
_configured = False


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the package root: ``get_logger("sweep")`` -> repro.sweep."""
    return logging.getLogger(f"{_ROOT_NAME}.{name}" if name else _ROOT_NAME)


def configure(
    verbosity: int = 0,
    quiet: bool = False,
    stream=None,
    force: bool = False,
) -> logging.Logger:
    """Configure the ``repro`` root logger once (idempotent).

    ``verbosity`` counts ``-v`` flags (0 -> INFO, >=1 -> DEBUG); ``quiet``
    wins and raises the level to WARNING.  Later calls only adjust the
    level unless ``force`` re-installs the handler (tests use this with a
    custom ``stream``).
    """
    global _configured
    logger = get_logger()
    level = logging.WARNING if quiet else (
        logging.DEBUG if verbosity >= 1 else logging.INFO
    )
    if not _configured or force:
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
        logger.addHandler(handler)
        logger.propagate = False
        _configured = True
    logger.setLevel(level)
    return logger

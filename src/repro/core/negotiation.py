"""PowerMap auto-negotiation (Sec. VII-A's "negotiate in advance").

The paper's ZigBee node negotiates a signaling power with each Wi-Fi device
before normal operation, using ZigFi's method, and stores the result in the
PowerMap.  We reproduce the negotiation with the quantities a real node can
obtain:

1. **listen** — sample RSSI while the Wi-Fi device transmits and take the
   strongest readings: that is the Wi-Fi sender's power as received at the
   ZigBee node (`rx_wifi_dbm`);
2. **invert the link** — by reciprocity, a ZigBee transmission at power `p`
   arrives at the Wi-Fi sender at roughly
   ``p + (rx_wifi_dbm - wifi_tx_power_dbm)`` (the path loss is symmetric;
   the Wi-Fi transmit power is known from its beacons / regulatory class);
3. **pick** — the strongest CC2420 power whose predicted level at the Wi-Fi
   sender stays safely below the effective CCA energy-detection threshold
   (:func:`~repro.core.powermap.negotiate_power`).

This turns the location-specific powers of the paper's footnote 3 (0, 0,
-1, -3 dBm at A-D) from magic constants into measured outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from ..devices.zigbee_device import ZigbeeDevice
from .powermap import PowerMap, negotiate_power

if TYPE_CHECKING:
    from ..faults.injectors import NegotiationFaultInjector


@dataclass
class NegotiationResult:
    """Outcome of one negotiation against one Wi-Fi transmitter."""

    device_id: str
    rx_wifi_dbm: float  # Wi-Fi power received at the ZigBee node
    predicted_rx_at_sender_dbm: float  # ZigBee 0 dBm as seen by the Wi-Fi sender
    chosen_power_dbm: float


class PowerNegotiator:
    """Measures the Wi-Fi link and fills a PowerMap."""

    def __init__(
        self,
        device: ZigbeeDevice,
        wifi_tx_power_dbm: float = 20.0,
        wifi_cca_threshold_dbm: float = -50.0,
        margin_db: float = 2.0,
        listen_duration: float = 20e-3,
        listen_rate_hz: float = 10e3,
        faults: Optional["NegotiationFaultInjector"] = None,
    ):
        self.device = device
        self.wifi_tx_power_dbm = wifi_tx_power_dbm
        self.wifi_cca_threshold_dbm = wifi_cca_threshold_dbm
        self.margin_db = margin_db
        self.listen_duration = listen_duration
        self.listen_rate_hz = listen_rate_hz
        harness = device.ctx.faults
        self.faults = faults if faults is not None else (
            harness.negotiation if harness is not None else None
        )

    def negotiate(
        self,
        device_id: str,
        powermap: PowerMap,
        on_done: Optional[Callable[[NegotiationResult], None]] = None,
    ) -> None:
        """Listen to the channel, pick a power, store it in ``powermap``.

        Asynchronous: schedules an RSSI capture and completes via
        ``on_done``.  Must run while the target Wi-Fi device is transmitting
        (its traffic is what gets measured).
        """

        def _on_trace(trace) -> None:
            # Keep only busy samples, then take their 60th percentile: data
            # frames from the *sender* dominate the busy airtime, so this
            # estimates the sender's level even when a nearby Wi-Fi
            # *receiver*'s (stronger but rarer) ACKs pollute the trace.
            samples = np.asarray(trace.samples_dbm, dtype=float)
            floor = self.device.radio.noise_floor_dbm
            busy = samples[samples > floor + 10.0]
            if len(busy) == 0:
                busy = samples  # nothing heard; negotiation falls to full power
            rx_wifi = float(np.percentile(busy, 60.0))
            if self.faults is not None:
                # Miscalibrated RSSI front-end: bias + per-measurement noise.
                rx_wifi = self.faults.perturb_rssi(rx_wifi)
            # In-band RSSI catches ~1/10 of the 20 MHz Wi-Fi power (2/20 MHz
            # overlap); undo that to estimate the full-band path.
            rx_wifi_fullband = rx_wifi + 10.0
            path_loss_db = self.wifi_tx_power_dbm - rx_wifi_fullband
            predicted = 0.0 - path_loss_db  # ZigBee at 0 dBm seen by the sender
            power = negotiate_power(
                rx_power_at_wifi_sender_dbm=predicted,
                wifi_cca_threshold_dbm=self.wifi_cca_threshold_dbm,
                margin_db=self.margin_db,
            )
            powermap.set(device_id, power)
            if on_done is not None:
                on_done(NegotiationResult(device_id, rx_wifi, predicted, power))

        self.device.rssi.capture(self.listen_duration, self.listen_rate_hz, _on_trace)

"""PowerMap: per-Wi-Fi-device control-packet transmission power (Sec. VII-A).

The signaling power is a two-sided compromise:

* too *low* and the Wi-Fi receiver's CSI barely flinches — the request is
  missed (locations far from the Wi-Fi receiver need full power);
* too *high* and the Wi-Fi **sender**'s CCA energy detection trips, so Wi-Fi
  defers instead of decoding a request — signaling fails differently
  (location C peaks at -1 dBm, location D needs -3 dBm in the paper).

The paper negotiates the power per Wi-Fi device in advance (using ZigFi's
method) and stores it in a PowerMap keyed by device identity.  We provide
the map plus a model-driven negotiation helper that picks, from a candidate
power list, the highest power that keeps the *predicted* CCA-trip
probability at the Wi-Fi sender under a budget — the same trade-off, driven
by the link budget instead of an online trial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: CC2420 selectable output powers, dBm.
CANDIDATE_POWERS_DBM = [0.0, -1.0, -3.0, -5.0, -7.0, -10.0, -15.0, -25.0]


@dataclass
class PowerMap:
    """Maps a Wi-Fi transmitter identity to a signaling power."""

    default_power_dbm: float = 0.0
    _entries: Dict[str, float] = field(default_factory=dict)

    def set(self, device_id: str, power_dbm: float) -> None:
        self._entries[device_id] = power_dbm

    def get(self, device_id: Optional[str]) -> float:
        if device_id is None:
            return self.default_power_dbm
        return self._entries.get(device_id, self.default_power_dbm)

    def known_devices(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)


def negotiate_power(
    rx_power_at_wifi_sender_dbm: float,
    wifi_cca_threshold_dbm: float,
    candidates: Sequence[float] = tuple(CANDIDATE_POWERS_DBM),
    margin_db: float = 2.0,
) -> float:
    """Pick the strongest candidate that stays under the Wi-Fi sender's CCA.

    ``rx_power_at_wifi_sender_dbm`` is the power the Wi-Fi *sender* would
    receive from the ZigBee node transmitting at 0 dBm (measurable during the
    ZigFi-style negotiation handshake).  A candidate power ``p`` reaches the
    sender at ``rx + p``; it is safe when that stays ``margin_db`` below the
    effective CCA threshold.  If even the weakest candidate trips CCA the
    weakest one is returned (the node is simply too close).
    """
    ordered = sorted(candidates, reverse=True)
    for power in ordered:
        if rx_power_at_wifi_sender_dbm + power <= wifi_cca_threshold_dbm - margin_db:
            return power
    return ordered[-1]

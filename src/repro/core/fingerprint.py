"""Wi-Fi transmitter identification from RSSI fingerprints (Sec. VII-A).

Once the activity is known to be Wi-Fi, the ZigBee node must tell *which*
transmitter it is, because the right signaling power depends on the
transmitter (PowerMap).  Following Smoggy-Link, four finer-grained features
form a per-device fingerprint:

* **energy span** — range between the strongest and weakest busy samples;
* **energy level** — mean busy-sample RSSI (dominated by path loss, hence by
  *which* device is transmitting from *where*);
* **energy variance** — variance of busy-sample RSSI;
* **occupancy level** — fraction of time the channel is busy (reflects the
  device's traffic intensity).

Fingerprints are clustered with L1 k-means (Manhattan distance, per the
paper); at runtime a new trace is assigned to the nearest cluster center.
Features are standardized before clustering so the dBm-scaled features do
not drown the occupancy fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..ml.kmeans import KMeans, manhattan_distances
from ..phy.rssi import RssiTrace


@dataclass(frozen=True)
class Fingerprint:
    """The four Smoggy-Link features of one trace."""

    energy_span: float  # dB
    energy_level: float  # dBm
    energy_variance: float  # dB^2
    occupancy_level: float  # fraction in [0, 1]

    def as_vector(self) -> List[float]:
        return [
            self.energy_span,
            self.energy_level,
            self.energy_variance,
            self.occupancy_level,
        ]


def extract_fingerprint(
    trace: RssiTrace,
    noise_floor_dbm: float,
    busy_margin_db: float = 8.0,
) -> Fingerprint:
    """Compute the fingerprint of one RSSI trace."""
    samples = np.asarray(trace.samples_dbm, dtype=float)
    busy = samples >= noise_floor_dbm + busy_margin_db
    occupancy = float(busy.mean())
    busy_samples = samples[busy]
    if len(busy_samples) == 0:
        return Fingerprint(0.0, noise_floor_dbm, 0.0, 0.0)
    span = float(busy_samples.max() - busy_samples.min())
    level = float(busy_samples.mean())
    variance = float(busy_samples.var())
    return Fingerprint(span, level, variance, occupancy)


class DeviceIdentifier:
    """Clusters fingerprints into per-transmitter groups and labels new ones."""

    def __init__(self, n_devices: int, rng: Optional[np.random.Generator] = None):
        if n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        self.n_devices = n_devices
        self._kmeans = KMeans(n_devices, rng=rng)
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        assert self._mean is not None and self._std is not None
        return (X - self._mean) / self._std

    def fit(self, fingerprints: Sequence[Fingerprint]) -> np.ndarray:
        """Cluster a training set; returns the cluster label of each input.

        Features are standardized robustly (median / MAD) so that one
        device's widely-spread feature does not compress the scale on which
        the other devices separate.
        """
        X = np.asarray([f.as_vector() for f in fingerprints], dtype=float)
        if len(X) < self.n_devices:
            raise ValueError("need at least one fingerprint per device")
        self._mean = np.median(X, axis=0)
        mad = np.median(np.abs(X - self._mean), axis=0)
        self._std = 1.4826 * mad  # consistent with sigma for normal data
        # A (near-)constant feature carries no information; neutralize it
        # instead of letting floating-point dust blow it up after scaling.
        degenerate = self._std <= 1e-9 * np.maximum(np.abs(self._mean), 1.0)
        self._std[degenerate] = 1.0
        result = self._kmeans.fit(self._standardize(X))
        self.labels_ = result.labels
        return result.labels

    def identify(self, fingerprint: Fingerprint) -> int:
        """Cluster id (device identity) of a fresh fingerprint."""
        if self._kmeans.result is None:
            raise RuntimeError("identifier is not fitted")
        X = np.asarray([fingerprint.as_vector()], dtype=float)
        return int(self._kmeans.predict(self._standardize(X))[0])

    def distance_to_centers(self, fingerprint: Fingerprint) -> np.ndarray:
        """Manhattan distances to each cluster center (diagnostics)."""
        if self._kmeans.result is None:
            raise RuntimeError("identifier is not fitted")
        X = self._standardize(np.asarray([fingerprint.as_vector()], dtype=float))
        return manhattan_distances(X, self._kmeans.result.centers)[0]

"""BiCord's ZigBee side: burst delivery driven by cross-technology signaling.

The node owns a :class:`~repro.devices.zigbee_device.ZigbeeDevice` and drives
the paper's sender loop (Fig. 2 / Fig. 5):

1. application bursts queue data packets;
2. the node attempts a packet through normal CSMA/CA;
3. on failure (busy channel or missing ACK) it runs CTI detection — is this
   Wi-Fi? — and, if so, transmits a 120 B *control packet* at the PowerMap
   power, deliberately overlapping the Wi-Fi traffic (forced, no CCA);
4. after each control packet it retries the data packet; once the Wi-Fi
   device has granted a white space the retry sails through and the burst
   drains with application pacing (``T_i``) until the white space ends, at
   which point the next failure re-triggers signaling — the next *round*;
5. if ``max_control_packets`` go unanswered, the Wi-Fi device is ignoring
   the request (e.g. high-priority traffic): back off and retry the salvo.

The MAC retry budget is reduced to 1 because BiCord's signaling loop *is*
the retransmission mechanism under CTI.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional, Tuple

if TYPE_CHECKING:
    from ..faults.injectors import ControlFaultInjector

from ..devices.base import RxInfo
from ..devices.zigbee_device import ZigbeeDevice
from ..mac.frames import Frame, zigbee_control_frame, zigbee_data_frame
from ..mac.zigbee import CHANNEL_ACCESS_FAILURE
from ..phy.medium import WIFI_ONLY
from ..traffic.generators import Burst
from .config import BicordConfig
from .powermap import PowerMap


class BicordNode:
    """ZigBee-side BiCord agent (the sender of the protected link)."""

    def __init__(
        self,
        device: ZigbeeDevice,
        receiver: str,
        config: Optional[BicordConfig] = None,
        powermap: Optional[PowerMap] = None,
        wifi_check: Optional[Callable[[], bool]] = None,
        interferer_id: Optional[Callable[[], Optional[str]]] = None,
        faults: Optional["ControlFaultInjector"] = None,
    ):
        self.device = device
        self.receiver = receiver
        self.sim = device.ctx.sim
        self.trace = device.ctx.trace
        self.config = config or BicordConfig()
        harness = device.ctx.faults
        self.faults = faults if faults is not None else (
            harness.control if harness is not None else None
        )
        self.powermap = powermap or PowerMap(
            default_power_dbm=self.config.signaling.default_power_dbm
        )
        #: Override for the CTI check (tests, classifier integration); the
        #: default is the fast in-band Wi-Fi energy check.
        self.wifi_check = wifi_check
        #: Returns the identity of the interfering Wi-Fi transmitter, used to
        #: pick the PowerMap entry (fingerprinting integration point).
        self.interferer_id = interferer_id

        mac = device.mac
        mac.max_frame_retries = 1
        mac.max_csma_backoffs = 2  # fail fast; the signaling loop recovers
        mac.on_send_success = self._on_send_success
        mac.on_send_failure = self._on_send_failure

        self._pending: Deque[Tuple[int, float, int]] = deque()  # (bytes, t0, burst)
        self._seq = 0
        self._inflight: Optional[Frame] = None
        self._salvo_count = 0
        self._outstanding_by_burst = {}
        self._burst_created = {}

        # Statistics
        self.packet_delays: List[float] = []
        self.packets_delivered = 0
        self.delivered_payload_bytes = 0
        self.control_packets_sent = 0
        self.piggyback_deliveries = 0
        self.signaling_salvos = 0
        self.salvos_abandoned = 0
        self.bursts_completed = 0
        self.burst_latencies: List[float] = []
        self.non_wifi_failures = 0

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def offer_burst(self, burst: Burst) -> None:
        """Queue one application burst for delivery."""
        was_idle = not self._pending and self._inflight is None
        for _ in range(burst.n_packets):
            self._pending.append((burst.payload_bytes, burst.created_at, burst.burst_id))
        self._outstanding_by_burst[burst.burst_id] = burst.n_packets
        self._burst_created[burst.burst_id] = burst.created_at
        self.trace.record(
            self.sim.now, "bicord.burst_offered", node=self.device.name,
            burst=burst.burst_id, packets=burst.n_packets,
        )
        if was_idle:
            self._send_next()

    @property
    def outstanding_packets(self) -> int:
        # The in-flight frame is still at the head of the queue (it is only
        # popped on success), so the queue length alone is the right count.
        return len(self._pending)

    @property
    def idle(self) -> bool:
        return self.outstanding_packets == 0

    # ------------------------------------------------------------------
    # Delivery loop
    # ------------------------------------------------------------------
    def _send_next(self) -> None:
        if self._inflight is not None or not self._pending:
            return
        payload, created_at, burst_id = self._pending[0]
        self._seq += 1
        frame = zigbee_data_frame(
            self.device.name, self.receiver, payload, created_at=created_at,
            burst_id=burst_id,
        )
        frame.seq = self._seq
        self._inflight = frame
        self.device.mac.send(frame)

    def _on_send_success(self, frame: Frame) -> None:
        if frame.meta.get("piggyback"):
            # A piggybacked control packet was acknowledged: the signaling
            # round succeeded AND delivered the head-of-line packet.
            self.piggyback_deliveries += 1
            self._account_delivery(frame)
            return
        if frame is not self._inflight:
            return
        self._account_delivery(frame)

    def _account_delivery(self, frame: Frame) -> None:
        self._inflight = None
        self._pending.popleft()
        self._salvo_count = 0
        delay = self.sim.now - frame.created_at
        self.packet_delays.append(delay)
        self.packets_delivered += 1
        payload = frame.meta.get("piggyback_payload", frame.payload_bytes)
        self.delivered_payload_bytes += payload
        burst_id = frame.meta.get("burst_id")
        if burst_id is not None:
            remaining = self._outstanding_by_burst.get(burst_id, 0) - 1
            self._outstanding_by_burst[burst_id] = remaining
            if remaining == 0:
                self.bursts_completed += 1
                self.burst_latencies.append(
                    self.sim.now - self._burst_created.pop(burst_id)
                )
        if self._pending:
            # Application pacing between packets of a burst (T_i).
            self.sim.schedule(self.config.signaling.inter_packet_gap, self._send_next)

    def _on_send_failure(self, frame: Frame, reason: str) -> None:
        if frame.meta.get("piggyback"):
            # The piggybacked control packet went unanswered: keep signaling
            # (the control transmission itself may still have been detected).
            self.sim.schedule(
                self.config.signaling.control_packet_gap, self._retry_inflight
            )
            return
        if frame is not self._inflight:
            return
        self.trace.record(
            self.sim.now, "bicord.data_failure", node=self.device.name,
            reason=reason, seq=frame.seq,
        )
        if self._wifi_present():
            self._signal_then_retry()
        else:
            # Not Wi-Fi (e.g. Bluetooth / microwave): signaling is pointless;
            # plain randomized retry.
            self.non_wifi_failures += 1
            self.sim.schedule(self.config.signaling.retry_backoff, self._retry_inflight)

    # ------------------------------------------------------------------
    # CTI detection and signaling
    # ------------------------------------------------------------------
    def _wifi_present(self) -> bool:
        if self.wifi_check is not None:
            return self.wifi_check()
        energy = self.device.radio.energy_dbm_of(WIFI_ONLY)
        floor = self.device.radio.noise_floor_dbm
        return energy >= floor + self.config.signaling.wifi_energy_margin_db

    def _signal_then_retry(self) -> None:
        signaling = self.config.signaling
        if self._salvo_count >= signaling.max_control_packets:
            # The Wi-Fi device is ignoring us (Sec. V: threshold exceeded).
            self._salvo_count = 0
            self.salvos_abandoned += 1
            self.trace.record(
                self.sim.now, "bicord.salvo_abandoned", node=self.device.name
            )
            self.sim.schedule(signaling.retry_backoff, self._retry_inflight)
            return
        if self._salvo_count == 0:
            self.signaling_salvos += 1
        self._salvo_count += 1
        device_id = self.interferer_id() if self.interferer_id is not None else None
        power = self.powermap.get(device_id)
        control = zigbee_control_frame(self.device.name, signaling.control_packet_bytes)
        self.control_packets_sent += 1
        self.trace.record(
            self.sim.now, "bicord.control_tx", node=self.device.name,
            power_dbm=power, salvo=self._salvo_count,
        )
        head = self._pending[0] if self._pending else None
        max_payload = signaling.control_packet_bytes - 11  # MAC overhead
        if (
            signaling.piggyback_data
            and head is not None
            and head[0] <= max_payload
            and self.device.mac._current is None
        ):
            # Future-work extension: address the control packet to the
            # receiver and let it double as the head-of-line data packet.
            payload, created_at, burst_id = head
            control.destination = self.receiver
            self._seq += 1
            control.seq = self._seq
            control.created_at = created_at
            control.meta.update(
                piggyback=True, piggyback_payload=payload, burst_id=burst_id
            )
            self.device.mac.send_immediate(control, power_dbm=power)
            return
        control.meta["on_complete"] = self._control_packet_done
        if self.faults is not None:
            # Faults hit only the forced (deliberately-colliding) path; the
            # piggyback path above goes through normal CSMA and keeps its ACK
            # semantics intact.
            power = self.faults.perturb(control, power)
        self.device.mac.send_forced(control, power_dbm=power)

    def _control_packet_done(self, _frame: Frame) -> None:
        # Give the Wi-Fi side one CSI inter-sample period to react, then
        # retry the data packet; if the channel is still owned by Wi-Fi the
        # retry fails fast and the next control packet goes out.
        self.sim.schedule(self.config.signaling.control_packet_gap, self._retry_inflight)

    def _retry_inflight(self) -> None:
        frame = self._inflight
        if frame is None:
            return
        if self.device.mac.busy and self.device.mac._current is not None:
            return  # a retry is already queued at the MAC
        self.device.mac.send(frame)

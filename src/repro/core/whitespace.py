"""Adaptive white-space allocation (Sec. VI).

A pure state machine, independent of the simulator, implementing the paper's
two phases:

**Learning phase.**  The Wi-Fi device grants its current white space length
(initially a short step of 30/40 ms) each time the ZigBee node requests the
channel.  It counts how many consecutive grants (*rounds*) one ZigBee burst
needs; a burst ends when no ZigBee signal appears for ``end_silence`` after
Wi-Fi resumes.  After a burst of ``N_round`` rounds the burst length is
estimated conservatively as::

    T_estimation = (T_w - 2 * T_c) * N_round          (paper, Sec. VI)

and the next grants use ``T_estimation``.  This repeats — the white space
grows monotonically across bursts (Fig. 7) — until a whole burst completes
within a single grant, at which point the allocator is *converged* and keeps
granting a white space "long enough for ZigBee transmissions".

**Adjustment phase.**  If the ZigBee traffic grows, bursts again span more
than one round and the same update rule stretches the white space.  If the
traffic shrinks, Wi-Fi cannot notice (the white space is simply underused),
so an expiring timer (10 s) restarts the learning phase from the initial
step — exactly the paper's re-estimation mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from .config import AllocatorConfig


class AllocatorPhase(Enum):
    LEARNING = "learning"
    CONVERGED = "converged"


@dataclass(frozen=True)
class GrantRecord:
    """One granted white space (history feeds Fig. 7 / Fig. 9)."""

    time: float
    duration: float
    phase: AllocatorPhase
    round_in_burst: int


@dataclass
class BurstEstimate:
    """Outcome of one observed burst."""

    time: float
    n_rounds: int
    whitespace: float
    estimation: float


class AdaptiveWhitespaceAllocator:
    """Implements the learning / adjustment phases of Sec. VI."""

    def __init__(self, config: Optional[AllocatorConfig] = None):
        self.config = config or AllocatorConfig()
        margin = (
            self.config.estimation_margin_control_packets
            * self.config.control_packet_time
        )
        if self.config.initial_whitespace <= margin:
            raise ValueError(
                "initial_whitespace must exceed the estimation margin "
                "(estimation_margin_control_packets * control_packet_time), "
                "otherwise the conservative estimate collapses to zero"
            )
        self.phase = AllocatorPhase.LEARNING
        self.current_whitespace = self.config.initial_whitespace
        self._rounds_in_burst = 0
        self._anomalous_bursts = 0  # consecutive multi-round bursts while converged
        self.grants: List[GrantRecord] = []
        self.estimates: List[BurstEstimate] = []
        self.bursts_observed = 0
        self.learning_iterations = 0

    # ------------------------------------------------------------------
    def grant(self, now: float) -> float:
        """The ZigBee node requested the channel: return the grant length."""
        self._rounds_in_burst += 1
        duration = self._clamped(self.current_whitespace)
        self.grants.append(
            GrantRecord(now, duration, self.phase, self._rounds_in_burst)
        )
        return duration

    def on_burst_end(self, now: float) -> Optional[BurstEstimate]:
        """No ZigBee signal for ``end_silence`` after resuming: burst over.

        Returns the new estimate if the learning rule updated the white
        space, else None.
        """
        n_rounds = self._rounds_in_burst
        self._rounds_in_burst = 0
        if n_rounds == 0:
            return None
        self.bursts_observed += 1
        if n_rounds == 1:
            # The whole burst fit in one white space: T_estimation covers the
            # burst; stop stretching (Sec. VI, end of learning phase).
            self.phase = AllocatorPhase.CONVERGED
            self._anomalous_bursts = 0
            return None
        if self.phase is AllocatorPhase.CONVERGED:
            # A multi-round burst after convergence is a *candidate* pattern
            # change; require it to repeat before re-entering learning, since
            # back-to-back application bursts look identical to one long one.
            self._anomalous_bursts += 1
            if self._anomalous_bursts < self.config.growth_debounce:
                return None
            self._anomalous_bursts = 0
        margin = (
            self.config.estimation_margin_control_packets
            * self.config.control_packet_time
        )
        estimation = (self.current_whitespace - margin) * n_rounds
        # The white space only grows during learning (Fig. 7): a multi-round
        # burst proves the current grant is too short.  Two guards keep the
        # update well-behaved: grow by at least T_c per multi-round burst
        # (the conservative estimate can undershoot the current grant, and
        # learning must terminate), and by at most 2x per burst (back-to-back
        # application bursts are indistinguishable from one long burst and
        # would otherwise compound the estimate explosively).
        new_whitespace = self._clamped(
            max(
                min(estimation, 2.0 * self.current_whitespace),
                self.current_whitespace + self.config.control_packet_time,
            )
        )
        estimate = BurstEstimate(now, n_rounds, new_whitespace, estimation)
        self.estimates.append(estimate)
        self.current_whitespace = new_whitespace
        self.phase = AllocatorPhase.LEARNING
        self.learning_iterations += 1
        return estimate

    def on_reestimation_timer(self, now: float) -> None:
        """Expiring timer (10 s): forget the estimate, re-learn from the step.

        Catches traffic patterns that became *shorter*, which the grant/round
        mechanism cannot observe (Sec. VI, white space adjustment).
        """
        self.current_whitespace = self.config.initial_whitespace
        self.phase = AllocatorPhase.LEARNING
        self._rounds_in_burst = 0
        # A stale anomaly count from before the reset must not carry into the
        # next converged period, or a single multi-round burst there would
        # defeat the growth debounce.
        self._anomalous_bursts = 0

    # ------------------------------------------------------------------
    def _clamped(self, value: float) -> float:
        return min(max(value, self.config.min_whitespace), self.config.max_whitespace)

    @property
    def converged(self) -> bool:
        return self.phase is AllocatorPhase.CONVERGED

    @property
    def rounds_in_current_burst(self) -> int:
        return self._rounds_in_burst

    def whitespace_trajectory(self) -> List[float]:
        """Granted lengths in order — the Fig. 7 series."""
        return [g.duration for g in self.grants]

"""CTI detection: classify the interferer from an RSSI trace (Sec. VII-A).

Before signaling, a ZigBee node must establish that the channel activity it
suffers from actually comes from a Wi-Fi sender (signaling at a Bluetooth
headset or a microwave oven would be pointless).  Following ZiSense, four
time-domain features are extracted from a high-rate RSSI trace:

* **average on-air time** — mean duration of above-threshold energy runs;
  Wi-Fi frames are an order of magnitude shorter than ZigBee frames, while a
  microwave oven radiates in ~10 ms plateaus;
* **minimum packet interval** — smallest gap between runs; Wi-Fi's SIFS/DIFS
  spacing is far tighter than ZigBee's CSMA pacing;
* **peak-to-average power ratio** — max RSSI over mean RSSI (in mW);
  frequency-hopping Bluetooth yields spiky traces, the oven a flat plateau;
* **under noise floor** — fraction of samples at the receiver noise floor;
  distinguishes duty-cycled sources from continuous ones.

The features feed a :class:`~repro.ml.DecisionTreeClassifier`.  Labels are
small integers (see :class:`InterfererClass`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..ml.decision_tree import DecisionTreeClassifier
from ..phy.rssi import RssiTrace


class InterfererClass(IntEnum):
    """Ground-truth / predicted source of channel activity."""

    ZIGBEE = 0
    BLUETOOTH = 1
    WIFI = 2
    MICROWAVE = 3


@dataclass(frozen=True)
class RssiFeatures:
    """The four ZiSense features of one trace."""

    avg_on_air_time: float  # seconds
    min_packet_interval: float  # seconds
    peak_to_average_ratio: float  # linear power ratio
    under_noise_floor: float  # fraction of samples at/below the floor

    def as_vector(self) -> List[float]:
        return [
            self.avg_on_air_time,
            self.min_packet_interval,
            self.peak_to_average_ratio,
            self.under_noise_floor,
        ]


def _run_bounds(mask: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Start and one-past-end indices of maximal True runs (vectorized).

    Transitions are located with ``np.flatnonzero(np.diff(...))`` instead of
    a Python loop — traces are thousands of samples long and this is on the
    CTI detection hot path.
    """
    m = np.asarray(mask, dtype=bool)
    if m.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    delta = np.diff(m.view(np.int8))
    starts = np.flatnonzero(delta == 1) + 1
    ends = np.flatnonzero(delta == -1) + 1
    if m[0]:
        starts = np.concatenate(([0], starts))
    if m[-1]:
        ends = np.concatenate((ends, [m.size]))
    return starts, ends


def _runs(mask: np.ndarray) -> List[Tuple[int, int]]:
    """Maximal runs of True in ``mask`` as (start, length) pairs."""
    starts, ends = _run_bounds(mask)
    return list(zip(starts.tolist(), (ends - starts).tolist()))


def extract_features(
    trace: RssiTrace,
    noise_floor_dbm: float,
    busy_margin_db: float = 8.0,
) -> RssiFeatures:
    """Compute the four features of one RSSI trace.

    ``busy_margin_db`` above the noise floor marks a sample "on air".  A
    trace with no busy samples yields degenerate features (zero on-air time,
    full-trace interval) that the classifier learns to treat as noise.
    """
    samples = np.asarray(trace.samples_dbm, dtype=float)
    period = 1.0 / trace.rate_hz
    busy = samples >= noise_floor_dbm + busy_margin_db
    starts, ends = _run_bounds(busy)
    if starts.size:
        avg_on_air = float(np.mean(ends - starts)) * period
    else:
        avg_on_air = 0.0
    # Gaps between consecutive busy runs.
    if starts.size >= 2:
        min_interval = float((starts[1:] - ends[:-1]).min()) * period
    else:
        min_interval = trace.duration
    # dBm -> mW via unique-value gather: quantized traces hold few distinct
    # levels, so this is O(unique) scalar pows plus one vectorized take.  A
    # plain ``10.0 ** (samples / 10.0)`` array pow is *not* used because
    # numpy's SIMD pow loop differs from scalar pow by 1 ulp for some
    # inputs, which would break bitwise reproducibility of the features.
    unique_dbm, inverse = np.unique(samples, return_inverse=True)
    power_mw = np.asarray([10.0 ** (u / 10.0) for u in unique_dbm])[inverse]
    mean_power = float(power_mw.mean())
    papr = float(power_mw.max() / mean_power) if mean_power > 0 else 1.0
    under_floor = float(np.mean(samples <= noise_floor_dbm + 1.0))
    return RssiFeatures(avg_on_air, min_interval, papr, under_floor)


class CtiClassifier:
    """Decision-tree interferer classifier over RSSI features."""

    def __init__(self, max_depth: int = 6):
        self.tree = DecisionTreeClassifier(max_depth=max_depth)
        self.fitted = False

    def fit(
        self,
        features: Sequence[RssiFeatures],
        labels: Sequence[InterfererClass],
    ) -> "CtiClassifier":
        X = [f.as_vector() for f in features]
        y = [int(label) for label in labels]
        self.tree.fit(X, y)
        self.fitted = True
        return self

    def classify(self, features: RssiFeatures) -> InterfererClass:
        if not self.fitted:
            raise RuntimeError("classifier is not fitted")
        return InterfererClass(self.tree.predict_one(features.as_vector()))

    def is_wifi(self, features: RssiFeatures) -> bool:
        """The question the BiCord node actually asks before signaling."""
        return self.classify(features) is InterfererClass.WIFI

    def accuracy(
        self,
        features: Sequence[RssiFeatures],
        labels: Sequence[InterfererClass],
    ) -> float:
        X = [f.as_vector() for f in features]
        y = [int(label) for label in labels]
        return self.tree.score(X, y)

    def wifi_detection_accuracy(
        self,
        features: Sequence[RssiFeatures],
        labels: Sequence[InterfererClass],
    ) -> float:
        """Binary accuracy on the Wi-Fi vs non-Wi-Fi question (paper: 96.39%)."""
        if not features:
            raise ValueError("empty evaluation set")
        correct = 0
        for f, label in zip(features, labels):
            predicted_wifi = self.is_wifi(f)
            actual_wifi = label is InterfererClass.WIFI
            correct += predicted_wifi == actual_wifi
        return correct / len(features)

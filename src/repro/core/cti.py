"""CTI detection: classify the interferer from an RSSI trace (Sec. VII-A).

Before signaling, a ZigBee node must establish that the channel activity it
suffers from actually comes from a Wi-Fi sender (signaling at a Bluetooth
headset or a microwave oven would be pointless).  Following ZiSense, four
time-domain features are extracted from a high-rate RSSI trace:

* **average on-air time** — mean duration of above-threshold energy runs;
  Wi-Fi frames are an order of magnitude shorter than ZigBee frames, while a
  microwave oven radiates in ~10 ms plateaus;
* **minimum packet interval** — smallest gap between runs; Wi-Fi's SIFS/DIFS
  spacing is far tighter than ZigBee's CSMA pacing;
* **peak-to-average power ratio** — max RSSI over mean RSSI (in mW);
  frequency-hopping Bluetooth yields spiky traces, the oven a flat plateau;
* **under noise floor** — fraction of samples at the receiver noise floor;
  distinguishes duty-cycled sources from continuous ones.

The features feed a :class:`~repro.ml.DecisionTreeClassifier`.  Labels are
small integers (see :class:`InterfererClass`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..ml.decision_tree import DecisionTreeClassifier
from ..phy.rssi import RssiTrace
from ..sim.units import dbm_to_mw


class InterfererClass(IntEnum):
    """Ground-truth / predicted source of channel activity."""

    ZIGBEE = 0
    BLUETOOTH = 1
    WIFI = 2
    MICROWAVE = 3


@dataclass(frozen=True)
class RssiFeatures:
    """The four ZiSense features of one trace."""

    avg_on_air_time: float  # seconds
    min_packet_interval: float  # seconds
    peak_to_average_ratio: float  # linear power ratio
    under_noise_floor: float  # fraction of samples at/below the floor

    def as_vector(self) -> List[float]:
        return [
            self.avg_on_air_time,
            self.min_packet_interval,
            self.peak_to_average_ratio,
            self.under_noise_floor,
        ]


def _runs(mask: np.ndarray) -> List[Tuple[int, int]]:
    """Maximal runs of True in ``mask`` as (start, length) pairs."""
    runs: List[Tuple[int, int]] = []
    start = None
    for i, value in enumerate(mask):
        if value and start is None:
            start = i
        elif not value and start is not None:
            runs.append((start, i - start))
            start = None
    if start is not None:
        runs.append((start, len(mask) - start))
    return runs


def extract_features(
    trace: RssiTrace,
    noise_floor_dbm: float,
    busy_margin_db: float = 8.0,
) -> RssiFeatures:
    """Compute the four features of one RSSI trace.

    ``busy_margin_db`` above the noise floor marks a sample "on air".  A
    trace with no busy samples yields degenerate features (zero on-air time,
    full-trace interval) that the classifier learns to treat as noise.
    """
    samples = np.asarray(trace.samples_dbm, dtype=float)
    period = 1.0 / trace.rate_hz
    busy = samples >= noise_floor_dbm + busy_margin_db
    runs = _runs(busy)
    if runs:
        avg_on_air = float(np.mean([length for _s, length in runs])) * period
    else:
        avg_on_air = 0.0
    # Gaps between consecutive busy runs.
    if len(runs) >= 2:
        gaps = [
            (runs[i + 1][0] - (runs[i][0] + runs[i][1])) for i in range(len(runs) - 1)
        ]
        min_interval = float(min(gaps)) * period
    else:
        min_interval = trace.duration
    power_mw = np.array([dbm_to_mw(s) for s in samples])
    mean_power = float(power_mw.mean())
    papr = float(power_mw.max() / mean_power) if mean_power > 0 else 1.0
    under_floor = float(np.mean(samples <= noise_floor_dbm + 1.0))
    return RssiFeatures(avg_on_air, min_interval, papr, under_floor)


class CtiClassifier:
    """Decision-tree interferer classifier over RSSI features."""

    def __init__(self, max_depth: int = 6):
        self.tree = DecisionTreeClassifier(max_depth=max_depth)
        self.fitted = False

    def fit(
        self,
        features: Sequence[RssiFeatures],
        labels: Sequence[InterfererClass],
    ) -> "CtiClassifier":
        X = [f.as_vector() for f in features]
        y = [int(label) for label in labels]
        self.tree.fit(X, y)
        self.fitted = True
        return self

    def classify(self, features: RssiFeatures) -> InterfererClass:
        if not self.fitted:
            raise RuntimeError("classifier is not fitted")
        return InterfererClass(self.tree.predict_one(features.as_vector()))

    def is_wifi(self, features: RssiFeatures) -> bool:
        """The question the BiCord node actually asks before signaling."""
        return self.classify(features) is InterfererClass.WIFI

    def accuracy(
        self,
        features: Sequence[RssiFeatures],
        labels: Sequence[InterfererClass],
    ) -> float:
        X = [f.as_vector() for f in features]
        y = [int(label) for label in labels]
        return self.tree.score(X, y)

    def wifi_detection_accuracy(
        self,
        features: Sequence[RssiFeatures],
        labels: Sequence[InterfererClass],
    ) -> float:
        """Binary accuracy on the Wi-Fi vs non-Wi-Fi question (paper: 96.39%)."""
        if not features:
            raise ValueError("empty evaluation set")
        correct = 0
        for f, label in zip(features, labels):
            predicted_wifi = self.is_wifi(f)
            actual_wifi = label is InterfererClass.WIFI
            correct += predicted_wifi == actual_wifi
        return correct / len(features)

"""BiCord's Wi-Fi side: detect requests, grant adaptive white spaces.

The coordinator runs on the Wi-Fi device that hosts the CSI extractor (the
link *receiver* in the paper's setup).  It wires together:

* the :class:`~repro.core.csi_detector.ZigbeeSignalDetector` fed by the
  device's CSI observer;
* the :class:`~repro.core.whitespace.AdaptiveWhitespaceAllocator` deciding
  grant lengths;
* the MAC's CTS-to-self reservation, which silences all Wi-Fi devices in
  range (including this one) for the grant duration.

Round/burst bookkeeping follows Sec. VI: a detection while no white space is
active starts (or continues) a burst and triggers a grant; after each white
space ends, if no further ZigBee signal is detected within ``end_silence``
(20 ms) the burst is declared over and the allocator updates its estimate.

The coordinator is *not forced* to grant: a ``grant_policy`` callback can
veto requests (e.g. while high-priority video traffic is queued — Sec. VIII-G).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from ..devices.wifi_device import WifiDevice
from ..mac.frames import Frame
from ..sim.engine import Event
from .config import BicordConfig
from .csi_detector import ZigbeeSignalDetector
from .whitespace import AdaptiveWhitespaceAllocator

if TYPE_CHECKING:
    from ..faults.injectors import FaultHarness

#: Grant-length histogram boundaries (ms): spans the allocator's range of
#: min_whitespace=5 ms .. max_whitespace=200 ms.
GRANT_BUCKETS_MS = (10.0, 20.0, 30.0, 50.0, 75.0, 100.0, 150.0, 200.0)


class BicordCoordinator:
    """Wi-Fi-side BiCord controller bound to a CSI-capable Wi-Fi device."""

    def __init__(
        self,
        device: WifiDevice,
        config: Optional[BicordConfig] = None,
        grant_policy: Optional[Callable[[], bool]] = None,
        faults: Optional["FaultHarness"] = None,
    ):
        if device.csi is None:
            raise ValueError(
                "BicordCoordinator needs a Wi-Fi device with a CSI observer "
                "(construct it with with_csi=True)"
            )
        self.device = device
        self.sim = device.ctx.sim
        self.trace = device.ctx.trace
        self.config = config or BicordConfig()
        self.grant_policy = grant_policy
        harness = faults if faults is not None else device.ctx.faults
        self._detection_faults = harness.detection if harness is not None else None
        self._cts_faults = harness.cts if harness is not None else None
        self._timer_faults = harness.timers if harness is not None else None
        self.detector = ZigbeeSignalDetector(
            self.config.detector, faults=self._detection_faults
        )
        self.allocator = AdaptiveWhitespaceAllocator(self.config.allocator)
        device.csi.subscribe(self.detector.observe)
        self.detector.on_detection.append(self._on_detection)
        self._whitespace_until = 0.0
        self._burst_watch: Optional[Event] = None
        self._pending_grant: Optional[float] = None
        device.mac.sent_listeners.append(self._on_frame_sent)
        self._reestimation_event = self.sim.schedule(
            self._reestimation_period(), self._reestimate
        )
        # Statistics
        self.grants_issued = 0
        self.requests_ignored = 0
        self.whitespace_airtime = 0.0
        self.bursts_completed = 0
        # Telemetry: instruments are fetched once here; with telemetry off
        # these are shared no-op singletons, so the detection path costs one
        # dead method call and no lookups (see repro.telemetry).
        registry = device.ctx.telemetry
        self._metrics = registry
        self._m_grants = registry.counter("bicord.grants")
        self._m_ignored = registry.counter("bicord.requests_ignored")
        self._m_bursts = registry.counter("bicord.bursts_completed")
        self._m_grant_ms = registry.histogram("bicord.grant_ms", GRANT_BUCKETS_MS)
        self._summary_published = False

    # ------------------------------------------------------------------
    # Detection path
    # ------------------------------------------------------------------
    def _on_detection(self, now: float) -> None:
        if now < self._whitespace_until or self._pending_grant is not None:
            # Already serving a white space (or one is queued): the signal is
            # leftover fluctuation from the same request.
            return
        if self._burst_watch is not None and self._burst_watch.pending:
            # The burst continues into another round: keep counting.
            self._burst_watch.cancel()
            self._burst_watch = None
        if self.grant_policy is not None and not self.grant_policy():
            self.requests_ignored += 1
            self._m_ignored.inc()
            self.trace.record(now, "bicord.request_ignored", coordinator=self.device.name)
            return
        duration = self.allocator.grant(now)
        self._pending_grant = duration
        self.grants_issued += 1
        self._m_grants.inc()
        self._m_grant_ms.observe(duration * 1e3)
        self.trace.record(
            now, "bicord.grant", coordinator=self.device.name,
            duration=duration, round=self.allocator.rounds_in_current_burst,
            phase=self.allocator.phase.value,
        )
        stamp = self._cts_faults.stamp() if self._cts_faults is not None else {}
        self.device.mac.reserve_whitespace(duration, bicord=True, **stamp)

    def _on_frame_sent(self, frame: Frame) -> None:
        if not frame.meta.get("bicord"):
            return
        duration = frame.meta.get("nav_duration", 0.0)
        self._pending_grant = None
        self._whitespace_until = self.sim.now + duration
        self.whitespace_airtime += duration
        self.detector.reset()
        # Watch for the end of the burst: end_silence after Wi-Fi resumes.
        watch_at = self._whitespace_until + self._end_silence()
        if self._burst_watch is not None and self._burst_watch.pending:
            self._burst_watch.cancel()
        self._burst_watch = self.sim.schedule_at(watch_at, self._check_burst_end)

    def _check_burst_end(self) -> None:
        self._burst_watch = None
        last = self.detector.last_detection
        if last is not None and last >= self._whitespace_until:
            # A fresh detection arrived after resume; _on_detection already
            # granted the next round, so the burst is still running.
            return
        estimate = self.allocator.on_burst_end(self.sim.now)
        self.bursts_completed += 1
        self._m_bursts.inc()
        self.trace.record(
            self.sim.now, "bicord.burst_end", coordinator=self.device.name,
            whitespace=self.allocator.current_whitespace,
            converged=self.allocator.converged,
            estimation=estimate.estimation if estimate else None,
        )

    # ------------------------------------------------------------------
    # Re-estimation timer
    # ------------------------------------------------------------------
    def _reestimation_period(self) -> float:
        base = self.config.allocator.reestimation_period
        if self._timer_faults is not None:
            return self._timer_faults.reestimation_period(base)
        return base

    def _end_silence(self) -> float:
        base = self.config.allocator.end_silence
        if self._timer_faults is not None:
            return self._timer_faults.end_silence(base)
        return base

    def _reestimate(self) -> None:
        self.allocator.on_reestimation_timer(self.sim.now)
        self.trace.record(self.sim.now, "bicord.reestimate", coordinator=self.device.name)
        self._reestimation_event = self.sim.schedule(
            self._reestimation_period(), self._reestimate
        )

    def stop(self) -> None:
        """Cancel timers (end of experiment) and publish summary telemetry."""
        if self._reestimation_event is not None:
            self._reestimation_event.cancel()
        if self._burst_watch is not None:
            self._burst_watch.cancel()
        self.publish_metrics()

    def publish_metrics(self) -> None:
        """Write the detector/allocator end-of-run summary (idempotent).

        Live counters (grants, bursts) accumulate as the run progresses;
        the detector's sample statistics and the allocator's convergence
        summary are cheaper to publish once, here, than per CSI sample.
        """
        if self._summary_published or not self._metrics.enabled:
            return
        self._summary_published = True
        registry = self._metrics
        registry.counter("detector.samples_seen").inc(self.detector.samples_seen)
        registry.counter("detector.high_samples").inc(self.detector.high_samples)
        registry.counter("detector.detections").inc(self.detector.detections)
        allocator = self.allocator
        registry.counter("allocator.learning_iterations").inc(
            allocator.learning_iterations
        )
        registry.counter("allocator.bursts_observed").inc(allocator.bursts_observed)
        registry.gauge("allocator.converged").set_max(float(allocator.converged))
        registry.gauge("allocator.whitespace_ms").set_max(
            allocator.current_whitespace * 1e3
        )
        registry.gauge("bicord.whitespace_granted_s").set_max(self.whitespace_airtime)

    # ------------------------------------------------------------------
    @property
    def whitespace_active(self) -> bool:
        return self.sim.now < self._whitespace_until

    @property
    def current_whitespace(self) -> float:
        return self.allocator.current_whitespace

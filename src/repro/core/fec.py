"""Packet-level erasure coding (FEC) for ZigBee bursts.

Sec. VII-A notes that "BiCord is orthogonal to existing interference
recovery mechanisms such as forward error correction, and can hence be
integrated into those mechanisms to further improve reliability."  This
module makes that claim testable: a burst of ``k`` data packets is extended
with ``m`` parity packets (XOR-based, Vandermonde-free systematic erasure
code over GF(2) groups), and the receiver recovers the burst when any ``k``
of the ``k+m`` packets arrive.

The code is a simple *interleaved XOR* scheme — parity packet ``j`` is the
XOR of the data packets whose index is ``j (mod m)``.  It recovers one loss
per parity group, which matches the sparse-loss regime FEC targets (a burst
that loses most packets needs retransmission or coordination, not coding —
exactly the paper's argument for BiCord).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set


@dataclass(frozen=True)
class FecBlock:
    """An encoded burst: ``k`` data packets + ``m`` parity packets."""

    k: int
    m: int
    #: Parity group of each data packet index (index mod m), for bookkeeping.
    burst_id: int = 0

    @property
    def total_packets(self) -> int:
        return self.k + self.m

    def parity_group(self, data_index: int) -> int:
        if not 0 <= data_index < self.k:
            raise IndexError(f"data index {data_index} out of range")
        return data_index % self.m if self.m > 0 else -1

    def group_members(self, group: int) -> List[int]:
        if self.m <= 0:
            return []
        return [i for i in range(self.k) if i % self.m == group]


class FecEncoder:
    """Builds the transmission plan of an FEC-protected burst."""

    def __init__(self, n_parity: int = 1):
        if n_parity < 0:
            raise ValueError("n_parity must be non-negative")
        self.n_parity = n_parity

    def encode(self, n_data: int, burst_id: int = 0) -> FecBlock:
        if n_data < 1:
            raise ValueError("need at least one data packet")
        m = min(self.n_parity, n_data)  # parity never outnumbers data
        return FecBlock(k=n_data, m=m, burst_id=burst_id)


@dataclass
class FecDecoder:
    """Tracks receptions of one block and decides recoverability.

    ``receive_data(i)`` / ``receive_parity(j)`` record arrivals;
    :meth:`missing_after_recovery` returns the data indices still
    unrecoverable (each parity packet repairs one missing member of its
    group).
    """

    block: FecBlock
    data_received: Set[int] = field(default_factory=set)
    parity_received: Set[int] = field(default_factory=set)

    def receive_data(self, index: int) -> None:
        if not 0 <= index < self.block.k:
            raise IndexError(f"data index {index} out of range")
        self.data_received.add(index)

    def receive_parity(self, index: int) -> None:
        if not 0 <= index < self.block.m:
            raise IndexError(f"parity index {index} out of range")
        self.parity_received.add(index)

    def missing_after_recovery(self) -> List[int]:
        """Data indices that cannot be delivered even after FEC recovery."""
        missing = [i for i in range(self.block.k) if i not in self.data_received]
        recovered: List[int] = []
        for group in self.parity_received:
            group_missing = [
                i for i in missing if self.block.parity_group(i) == group
            ]
            if len(group_missing) == 1:
                recovered.append(group_missing[0])
        return [i for i in missing if i not in recovered]

    @property
    def complete(self) -> bool:
        return not self.missing_after_recovery()

    def delivered_count(self) -> int:
        return self.block.k - len(self.missing_after_recovery())

"""BiCord protocol parameters.

Defaults follow the paper's implementation values:

* detector: ``N = 2`` high-fluctuation CSI samples within ``T = 5 ms``;
* control packets of 120 bytes (long enough to span two consecutive Wi-Fi
  packets at the paper's 1 ms traffic);
* initial white space of 30 or 40 ms during the learning phase;
* ``T_c = 8 ms`` as the per-round control-packet time used in estimation;
* end of a ZigBee burst declared after 20 ms without ZigBee signal once
  Wi-Fi resumes;
* traffic-pattern re-estimation every 10 s.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DetectorConfig:
    """CSI-detector parameters (Sec. V)."""

    #: Classification threshold between "slight jitter" and "high fluctuation".
    fluctuation_threshold: float = 0.25
    #: N: high-fluctuation samples required within the window.
    required_samples: int = 2
    #: T: window length in seconds.
    window: float = 5e-3
    #: Suppress repeated detections for this long after firing.
    refractory: float = 4e-3


@dataclass
class AllocatorConfig:
    """Adaptive white-space allocation parameters (Sec. VI)."""

    #: Initial (step) white space used in the learning phase, seconds.
    initial_whitespace: float = 30e-3
    #: T_c: control-packet time subtracted (twice) per round in estimation.
    control_packet_time: float = 8e-3
    #: How many control-packet times to subtract per round in the estimate
    #: (the paper uses 2 — "a conservative estimation by subtracting 2*T_c
    #: for each round"; the ablation benches vary this).
    estimation_margin_control_packets: float = 2.0
    #: Silence after Wi-Fi resumes that ends a ZigBee burst, seconds.
    end_silence: float = 20e-3
    #: Expiring timer that triggers periodic re-estimation, seconds.
    reestimation_period: float = 10.0
    #: Once converged, this many *consecutive* multi-round bursts are needed
    #: before the estimate grows again.  A single multi-round burst is more
    #: often two application bursts arriving back-to-back (Poisson chaining)
    #: than a genuine traffic-pattern change; reacting to it immediately
    #: ratchets the white space upward and wastes channel time.
    growth_debounce: int = 2
    #: Safety clamps on granted white spaces.
    min_whitespace: float = 5e-3
    max_whitespace: float = 200e-3


@dataclass
class SignalingConfig:
    """ZigBee-side cross-technology signaling parameters (Sec. V, VII-A)."""

    #: Length of one control packet on the air, bytes (MPDU).
    control_packet_bytes: int = 120
    #: Gap between consecutive control packets of one salvo, seconds.
    control_packet_gap: float = 1e-3
    #: Give up the current signaling salvo after this many control packets
    #: (the Wi-Fi device is ignoring the request).
    max_control_packets: int = 8
    #: Wait before re-trying a whole salvo after the Wi-Fi device ignored it.
    retry_backoff: float = 50e-3
    #: Default control-packet power when the PowerMap has no entry, dBm.
    default_power_dbm: float = 0.0
    #: Pacing between data packets inside a burst, seconds (application-level
    #: interval T_i; tuned so ten 50 B packets span ~60 ms as in the paper).
    inter_packet_gap: float = 2e-3
    #: Energy above the ZigBee noise floor treated as "Wi-Fi present" by the
    #: fast CTI check, dB.
    wifi_energy_margin_db: float = 15.0
    #: Paper's future-work extension (Sec. VII-B): reuse control packets to
    #: carry the head-of-line data packet.  A unicast 120 B control packet is
    #: then acknowledged by the ZigBee receiver, so a successful signaling
    #: round also delivers one packet "for free".
    piggyback_data: bool = False


@dataclass
class BicordConfig:
    """Top-level BiCord configuration."""

    detector: DetectorConfig = field(default_factory=DetectorConfig)
    allocator: AllocatorConfig = field(default_factory=AllocatorConfig)
    signaling: SignalingConfig = field(default_factory=SignalingConfig)

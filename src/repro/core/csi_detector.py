"""ZigBee-signal detection from the CSI stream (Sec. V).

The Wi-Fi receiver never decodes ZigBee frames.  It classifies each CSI
deviation sample against a threshold into *slight jitter* vs *high
fluctuation*, and declares "ZigBee present" when at least ``N`` high
fluctuations fall within a sliding window of ``T`` seconds.  Continuity is
what separates a ZigBee control salvo (which keeps disturbing consecutive
Wi-Fi frames) from an isolated strong-noise spike — the paper's key
false-positive defense.

The detector is a pure consumer of :class:`~repro.phy.csi.CsiSample`; it has
no access to ground truth.  Precision/recall accounting against the samples'
``zigbee_overlap`` flag happens in the experiment harness.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional

from ..phy.csi import CsiSample
from .config import DetectorConfig

if TYPE_CHECKING:
    from ..faults.injectors import DetectionFaultInjector


class ZigbeeSignalDetector:
    """Sliding-window continuity detector over CSI deviations."""

    def __init__(
        self,
        config: Optional[DetectorConfig] = None,
        faults: Optional["DetectionFaultInjector"] = None,
    ):
        self.config = config or DetectorConfig()
        if self.config.required_samples < 1:
            raise ValueError("required_samples must be >= 1")
        if self.config.window <= 0:
            raise ValueError("window must be positive")
        self._high_times: Deque[float] = deque()
        self._last_detection: Optional[float] = None
        self.on_detection: List[Callable[[float], None]] = []
        #: Fault injector flipping detection outcomes (FP/FN, Fig. 5 rates).
        self.faults = faults
        # Statistics
        self.samples_seen = 0
        self.high_samples = 0
        self.detections = 0

    # ------------------------------------------------------------------
    def observe(self, sample: CsiSample) -> bool:
        """Feed one CSI sample; returns True if a detection fired."""
        self.samples_seen += 1
        config = self.config
        now = sample.time
        natural = False
        if sample.deviation >= config.fluctuation_threshold:
            self.high_samples += 1
            self._high_times.append(now)
            horizon = now - config.window
            while self._high_times and self._high_times[0] < horizon:
                self._high_times.popleft()
            natural = len(self._high_times) >= config.required_samples
        fire = natural
        if self.faults is not None:
            # A suppressed detection leaves the window state untouched (the
            # fluctuations happened; only the verdict was lost), so the very
            # next high sample can fire — a transient miss, not a blackout.
            fire = self.faults.flip(natural)
        if not fire:
            return False
        if (
            self._last_detection is not None
            and now - self._last_detection < config.refractory
        ):
            return False
        self._last_detection = now
        self.detections += 1
        for callback in self.on_detection:
            callback(now)
        return True

    def reset(self) -> None:
        """Clear window state (e.g. when a white space starts)."""
        self._high_times.clear()

    @property
    def last_detection(self) -> Optional[float]:
        return self._last_detection

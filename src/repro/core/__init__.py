"""BiCord core: cross-technology signaling + adaptive white-space allocation."""

from .config import AllocatorConfig, BicordConfig, DetectorConfig, SignalingConfig
from .coordinator import BicordCoordinator
from .csi_detector import ZigbeeSignalDetector
from .cti import CtiClassifier, InterfererClass, RssiFeatures, extract_features
from .fingerprint import DeviceIdentifier, Fingerprint, extract_fingerprint
from .negotiation import NegotiationResult, PowerNegotiator
from .node import BicordNode
from .powermap import CANDIDATE_POWERS_DBM, PowerMap, negotiate_power
from .whitespace import (
    AdaptiveWhitespaceAllocator,
    AllocatorPhase,
    BurstEstimate,
    GrantRecord,
)

__all__ = [
    "AllocatorConfig",
    "BicordConfig",
    "DetectorConfig",
    "SignalingConfig",
    "BicordCoordinator",
    "ZigbeeSignalDetector",
    "CtiClassifier",
    "InterfererClass",
    "RssiFeatures",
    "extract_features",
    "DeviceIdentifier",
    "Fingerprint",
    "extract_fingerprint",
    "BicordNode",
    "NegotiationResult",
    "PowerNegotiator",
    "CANDIDATE_POWERS_DBM",
    "PowerMap",
    "negotiate_power",
    "AdaptiveWhitespaceAllocator",
    "AllocatorPhase",
    "BurstEstimate",
    "GrantRecord",
]

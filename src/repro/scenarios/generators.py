"""Seeded procedural scenario generators: dense deployments on demand.

Each generator emits a fully-validated generic-backend
:class:`~repro.scenarios.spec.ScenarioSpec` with N ZigBee links and M
Wi-Fi pairs, so deployment density and traffic mix — the axes the
TSCH/Wi-Fi and CTI-survey papers single out — become sweepable
parameters.

Placement is driven by ``placement_seed`` through its own
``numpy.random.default_rng``, *not* by the simulation seed: the same
generator call always yields the same spec (and hence the same
fingerprint and cache key), while the simulation seed only varies the
run.  ``grid`` uses no randomness at all.  Coordinates are rounded so
fingerprints are stable across platforms.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from .spec import (
    BurstTrafficSpec,
    CoordinatorSpec,
    ScenarioSpec,
    WifiLinkSpec,
    ZigbeeLinkSpec,
    round_position,
)

#: Per-link traffic archetypes cycled by ``traffic_mix="mixed"``:
#: light sensor chatter, periodic meter reads, heavy camera bursts.
TRAFFIC_PROFILES: Tuple[BurstTrafficSpec, ...] = (
    BurstTrafficSpec(n_packets=3, payload_bytes=30, interval_mean=0.25),
    BurstTrafficSpec(n_packets=5, payload_bytes=50, interval_mean=0.4),
    BurstTrafficSpec(n_packets=12, payload_bytes=100, interval_mean=1.0),
)
TRAFFIC_MIXES = ("uniform", "mixed")


#: Placement rounding is the spec-wide convention — trajectory waypoints and
#: AP sites round through the same function (fingerprint stability).
_round_pos = round_position


def _zigbee_link(
    index: int,
    sender_pos: Tuple[float, float],
    receiver_pos: Tuple[float, float],
    traffic_mix: str,
    max_bursts: Optional[int],
) -> ZigbeeLinkSpec:
    if traffic_mix not in TRAFFIC_MIXES:
        raise ValueError(
            f"unknown traffic_mix {traffic_mix!r}; expected one of {TRAFFIC_MIXES}"
        )
    profile = (
        TRAFFIC_PROFILES[index % len(TRAFFIC_PROFILES)]
        if traffic_mix == "mixed"
        else TRAFFIC_PROFILES[0]
    )
    # Stagger starts so dense deployments don't fire their first burst in
    # lockstep (each source still draws from its own RNG stream).
    traffic = BurstTrafficSpec(
        n_packets=profile.n_packets,
        payload_bytes=profile.payload_bytes,
        interval_mean=profile.interval_mean,
        poisson=profile.poisson,
        max_bursts=max_bursts,
        start_delay=round(0.05 * index, 3),
    )
    return ZigbeeLinkSpec(
        name=f"z{index:02d}",
        sender_pos=sender_pos,
        receiver_pos=receiver_pos,
        traffic=traffic,
    )


def _wifi_pairs(n_wifi_pairs: int, y: float, spacing: float) -> Tuple[WifiLinkSpec, ...]:
    if n_wifi_pairs < 1:
        raise ValueError(f"n_wifi_pairs must be >= 1, got {n_wifi_pairs}")
    links = []
    for j in range(n_wifi_pairs):
        x = round(j * spacing, 3)
        links.append(
            WifiLinkSpec(
                name=f"wifi{j}",
                sender=f"W{j}E",
                receiver=f"W{j}F",
                sender_pos=_round_pos(x, y),
                receiver_pos=_round_pos(x + 3.0, y),
            )
        )
    return tuple(links)


def grid(
    n_zigbee_links: int = 4,
    n_wifi_pairs: int = 1,
    spacing: float = 2.0,
    link_distance: float = 1.0,
    traffic_mix: str = "mixed",
    duration: float = 6.0,
    scheme: str = "bicord",
    max_bursts: Optional[int] = 20,
) -> ScenarioSpec:
    """A deterministic square grid of ZigBee links (no randomness)."""
    if n_zigbee_links < 1:
        raise ValueError(f"n_zigbee_links must be >= 1, got {n_zigbee_links}")
    cols = math.ceil(math.sqrt(n_zigbee_links))
    zigbee = []
    for i in range(n_zigbee_links):
        row, col = divmod(i, cols)
        sender = _round_pos(col * spacing, row * spacing)
        receiver = _round_pos(sender[0] + link_distance, sender[1] + 0.4)
        zigbee.append(_zigbee_link(i, sender, receiver, traffic_mix, max_bursts))
    return ScenarioSpec(
        name="grid",
        description=(
            f"{n_zigbee_links} ZigBee links on a {spacing} m grid, "
            f"{n_wifi_pairs} Wi-Fi pair(s), {traffic_mix} traffic"
        ),
        duration=duration,
        grace=1.0,
        backend="generic",
        wifi=_wifi_pairs(n_wifi_pairs, y=-spacing, spacing=spacing),
        zigbee=tuple(zigbee),
        coordinator=CoordinatorSpec(scheme=scheme),
    )


def random_uniform(
    n_zigbee_links: int = 4,
    n_wifi_pairs: int = 1,
    area: Tuple[float, float] = (12.0, 8.0),
    placement_seed: int = 0,
    link_distance: float = 1.0,
    traffic_mix: str = "mixed",
    duration: float = 6.0,
    scheme: str = "bicord",
    max_bursts: Optional[int] = 20,
) -> ScenarioSpec:
    """ZigBee senders dropped uniformly at random over ``area`` (meters).

    Receivers sit ``link_distance`` away at a random angle, clipped back
    into the area.  The same ``placement_seed`` always reproduces the
    same layout.
    """
    if n_zigbee_links < 1:
        raise ValueError(f"n_zigbee_links must be >= 1, got {n_zigbee_links}")
    width, height = float(area[0]), float(area[1])
    rng = np.random.default_rng(int(placement_seed))
    zigbee = []
    for i in range(n_zigbee_links):
        sx = float(rng.uniform(0.0, width))
        sy = float(rng.uniform(0.0, height))
        angle = float(rng.uniform(0.0, 2.0 * math.pi))
        rx = min(max(sx + link_distance * math.cos(angle), 0.0), width)
        ry = min(max(sy + link_distance * math.sin(angle), 0.0), height)
        zigbee.append(
            _zigbee_link(
                i, _round_pos(sx, sy), _round_pos(rx, ry), traffic_mix, max_bursts
            )
        )
    return ScenarioSpec(
        name="random-uniform",
        description=(
            f"{n_zigbee_links} ZigBee links uniform over {width}x{height} m "
            f"(placement_seed={placement_seed}), {n_wifi_pairs} Wi-Fi pair(s)"
        ),
        duration=duration,
        grace=1.0,
        backend="generic",
        wifi=_wifi_pairs(n_wifi_pairs, y=-2.0, spacing=max(width / max(n_wifi_pairs, 1), 3.5)),
        zigbee=tuple(zigbee),
        coordinator=CoordinatorSpec(scheme=scheme),
    )


def clustered(
    n_clusters: int = 3,
    links_per_cluster: int = 3,
    cluster_radius: float = 1.5,
    area: Tuple[float, float] = (15.0, 10.0),
    placement_seed: int = 0,
    n_wifi_pairs: int = 1,
    link_distance: float = 0.8,
    traffic_mix: str = "mixed",
    duration: float = 6.0,
    scheme: str = "bicord",
    max_bursts: Optional[int] = 20,
) -> ScenarioSpec:
    """ZigBee links grouped into hotspots (rooms / machine cells).

    Cluster centres are uniform over the area inset by ``cluster_radius``;
    each cluster's links scatter uniformly within the radius.
    """
    if n_clusters < 1 or links_per_cluster < 1:
        raise ValueError(
            f"n_clusters and links_per_cluster must be >= 1, "
            f"got {n_clusters}/{links_per_cluster}"
        )
    width, height = float(area[0]), float(area[1])
    margin = min(cluster_radius, width / 2.0, height / 2.0)
    rng = np.random.default_rng(int(placement_seed))
    zigbee = []
    index = 0
    for _ in range(n_clusters):
        cx = float(rng.uniform(margin, width - margin))
        cy = float(rng.uniform(margin, height - margin))
        for _ in range(links_per_cluster):
            angle = float(rng.uniform(0.0, 2.0 * math.pi))
            radius = float(rng.uniform(0.0, cluster_radius))
            sx = min(max(cx + radius * math.cos(angle), 0.0), width)
            sy = min(max(cy + radius * math.sin(angle), 0.0), height)
            langle = float(rng.uniform(0.0, 2.0 * math.pi))
            rx = min(max(sx + link_distance * math.cos(langle), 0.0), width)
            ry = min(max(sy + link_distance * math.sin(langle), 0.0), height)
            zigbee.append(
                _zigbee_link(
                    index, _round_pos(sx, sy), _round_pos(rx, ry),
                    traffic_mix, max_bursts,
                )
            )
            index += 1
    return ScenarioSpec(
        name="clustered",
        description=(
            f"{n_clusters} clusters x {links_per_cluster} ZigBee links "
            f"(radius {cluster_radius} m, placement_seed={placement_seed})"
        ),
        duration=duration,
        grace=1.0,
        backend="generic",
        wifi=_wifi_pairs(n_wifi_pairs, y=-2.0, spacing=max(width / max(n_wifi_pairs, 1), 3.5)),
        zigbee=tuple(zigbee),
        coordinator=CoordinatorSpec(scheme=scheme),
    )

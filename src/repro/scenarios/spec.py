"""Declarative scenario specs: the data model behind ``repro.scenarios``.

A :class:`ScenarioSpec` is a pure-data description of one coexistence
deployment: which Wi-Fi links and ZigBee links exist, where their devices
sit, what traffic each link carries, which coordination scheme runs on
which Wi-Fi link, optional mobility, and an optional named fault plan.
Everything the compiler (:mod:`.compiler`) needs to build a ready
simulation is in the spec; everything else (seed, calibration override,
trace kinds) arrives at compile time.

Specs are frozen dataclasses, so they serialize through
:mod:`repro.serialization` like every config in this repo, and
:meth:`ScenarioSpec.fingerprint` content-addresses the whole tree — the
sweep cache and telemetry manifests key on that digest.

Loading is *strict*: :func:`spec_from_dict` walks the dataclass tree and
rejects unknown keys and ill-typed values with a :class:`SpecError`
carrying the exact path (``zigbee[1].traffic.n_packets``) — a typo in a
scenario file must never silently fall back to a default.  TOML and JSON
files load through :func:`load_spec`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Optional,
    Tuple,
    Union,
    get_args,
    get_origin,
    get_type_hints,
)

from ..core.config import BicordConfig
from ..experiments.runner import SCHEMES
from ..experiments.topology import LOCATIONS, Calibration
from ..serialization import stable_hash, to_dict

MOBILITY_KINDS = ("none", "person", "device", "trajectory")
TRAJECTORY_MODELS = ("waypoint", "random-waypoint")
WIFI_TRAFFIC_KINDS = ("periodic", "priority", "none")
BACKENDS = ("generic", "office")


def round_position(x: float, y: float) -> Tuple[float, float]:
    """Canonical coordinate rounding (mm precision) for spec fingerprints.

    Every position that enters a spec — generator placements, trajectory
    waypoints, AP sites — rounds through this one function, so equivalent
    TOML float spellings (``1.2000001`` vs ``1.2``) always hash to the same
    :meth:`ScenarioSpec.fingerprint` and never split the sweep cache.
    """
    return (round(float(x), 3), round(float(y), 3))


class SpecError(ValueError):
    """A scenario spec failed validation; ``path`` pinpoints the field."""

    def __init__(self, path: str, message: str):
        self.path = path or "<root>"
        self.message = message
        super().__init__(f"{self.path}: {message}")


# ======================================================================
# The spec tree
# ======================================================================
@dataclass(frozen=True)
class WifiTrafficSpec:
    """Workload on one Wi-Fi link.

    ``kind`` selects the generator: ``periodic`` (the paper's saturating
    1 ms stream), ``priority`` (alternating video/file phases, Sec.
    VIII-G), or ``none`` (a silent link that only hosts the coordinator).
    ``None`` payload/interval fall back to the calibration's values.
    """

    kind: str = "periodic"
    payload_bytes: Optional[int] = None
    interval: Optional[float] = None
    max_packets: Optional[int] = None
    # priority-kind knobs
    high_proportion: float = 0.3
    phase_duration: float = 0.5
    #: Horizon the priority phases span; ``None`` = the scenario duration.
    total_duration: Optional[float] = None


@dataclass(frozen=True)
class BurstTrafficSpec:
    """Bursty ZigBee application traffic (the paper's Poisson model)."""

    n_packets: int = 5
    payload_bytes: int = 50
    interval_mean: float = 0.2
    poisson: bool = True
    max_bursts: Optional[int] = None
    start_delay: float = 0.0


@dataclass(frozen=True)
class WifiLinkSpec:
    """One Wi-Fi sender/receiver pair (and the traffic it carries)."""

    name: str = "wifi"
    sender: str = "E"
    receiver: str = "F"
    sender_pos: Tuple[float, float] = (0.0, 0.0)
    receiver_pos: Tuple[float, float] = (3.0, 0.0)
    #: ``None`` = take the value from the calibration.
    channel: Optional[int] = None
    tx_power_dbm: Optional[float] = None
    data_rate_mbps: Optional[float] = None
    traffic: WifiTrafficSpec = field(default_factory=WifiTrafficSpec)


@dataclass(frozen=True)
class ZigbeeLinkSpec:
    """One ZigBee sender/receiver pair (and its burst traffic).

    ``sender``/``receiver`` are device names; ``None`` derives them from
    the link name (``<name>`` / ``<name>-rx``).
    """

    name: str = "zigbee"
    sender: Optional[str] = None
    receiver: Optional[str] = None
    sender_pos: Tuple[float, float] = (2.6, 0.9)
    receiver_pos: Tuple[float, float] = (3.8, 1.3)
    channel: Optional[int] = None
    tx_power_dbm: Optional[float] = None
    #: Control-packet power for this node; ``None`` = the paper's
    #: per-location default (see ``location_powermap``).
    signaling_power_dbm: Optional[float] = None
    traffic: BurstTrafficSpec = field(default_factory=BurstTrafficSpec)

    @property
    def sender_name(self) -> str:
        return self.sender if self.sender is not None else self.name

    @property
    def receiver_name(self) -> str:
        return self.receiver if self.receiver is not None else f"{self.name}-rx"


@dataclass(frozen=True)
class CoordinatorSpec:
    """Which coordination scheme runs, and on which Wi-Fi link."""

    scheme: str = "bicord"
    #: Name of the Wi-Fi link hosting the coordinator (its *receiver* is
    #: the observing device); ``None`` = the spec's first Wi-Fi link.
    on: Optional[str] = None
    ecc_whitespace: float = 20e-3
    ecc_period: float = 100e-3
    #: When True and a priority Wi-Fi source exists, the coordinator only
    #: grants white spaces during low-priority phases (Sec. VIII-G).
    honor_priority: bool = True
    bicord: BicordConfig = field(default_factory=BicordConfig)


@dataclass(frozen=True)
class MobilitySpec:
    """Mobility: Sec. VIII-F jitter models plus full trajectory motion.

    ``kind`` selects the model: ``person`` (CSI perturbation on a Wi-Fi
    link), ``device`` (a ZigBee sender wandering within 1 m), or
    ``trajectory`` (the link's *sender* rides a :mod:`repro.mobility`
    trajectory, re-positioned every ``tick`` seconds).  ``link`` names the
    affected link; ``None`` = the observer Wi-Fi link (``person``), the
    first ZigBee link (``device``), or the first Wi-Fi link — falling back
    to the first ZigBee link — for ``trajectory``.

    Trajectory knobs: ``model="waypoint"`` follows ``waypoints`` at
    ``speed_mps`` (or one speed per leg via ``leg_speeds``; ``loop`` closes
    the path), ``model="random-waypoint"`` draws targets inside ``area``
    (offset by ``origin``) from its own generator seeded with ``rw_seed``,
    pausing ``pause`` seconds at each.  Waypoint and origin coordinates are
    rounded through :func:`round_position` at construction, so fingerprints
    are stable across TOML float spellings.
    """

    kind: str = "none"
    link: Optional[str] = None
    # trajectory-kind knobs
    model: str = "waypoint"
    waypoints: Tuple[Tuple[float, float], ...] = ()
    speed_mps: float = 1.0
    leg_speeds: Tuple[float, ...] = ()
    loop: bool = False
    tick: float = 0.1
    area: Tuple[float, float] = (30.0, 10.0)
    origin: Tuple[float, float] = (0.0, 0.0)
    pause: float = 0.0
    rw_seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "waypoints",
            tuple(round_position(x, y) for x, y in self.waypoints),
        )
        object.__setattr__(self, "origin", round_position(*self.origin))


@dataclass(frozen=True)
class ApSpec:
    """One additional access point of the ESS (the roaming AP set).

    The first AP of the ESS is always the roaming link's own receiver;
    entries here add further APs at fixed sites.  ``None`` channel/power/
    rate fall back to the calibration, like Wi-Fi links.
    """

    name: str = "AP"
    pos: Tuple[float, float] = (0.0, 0.0)
    channel: Optional[int] = None
    tx_power_dbm: Optional[float] = None
    data_rate_mbps: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "pos", round_position(*self.pos))


@dataclass(frozen=True)
class RoamingSpec:
    """Client roaming across the ESS: policy, scan cadence, handoff cost.

    ``link`` names the Wi-Fi link whose *sender* is the roaming client
    (its receiver is the first AP of the ESS); ``None`` = the spec's first
    Wi-Fi link.  ``policy`` is a registered AP-selection policy
    (see :data:`repro.mobility.roaming.AP_SELECTION_POLICIES`);
    ``hysteresis_db`` / ``min_rssi_dbm`` parameterize the shipped
    policies.  ``handoff_gap`` seconds of MAC self-suppression model the
    scan/auth/assoc exchange; a return to the previous AP within
    ``pingpong_window`` seconds counts as a ping-pong.
    """

    link: Optional[str] = None
    policy: str = "strongest-rssi"
    hysteresis_db: float = 4.0
    min_rssi_dbm: float = -75.0
    scan_interval: float = 0.25
    handoff_gap: float = 30e-3
    pingpong_window: float = 2.0


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, compilable scenario description."""

    name: str = "scenario"
    description: str = ""
    duration: float = 6.0
    #: Extra settling time after ``duration`` while ZigBee packets drain.
    grace: float = 0.0
    #: ``office`` delegates the base E/F/ZS/ZR quartet to ``build_office``
    #: (the calibrated Fig. 6 geometry); ``generic`` builds every device
    #: from the link specs alone.
    backend: str = "generic"
    #: Paper location (A-D): pins the office geometry and the default
    #: signaling power.
    location: str = "A"
    wifi: Tuple[WifiLinkSpec, ...] = (WifiLinkSpec(),)
    zigbee: Tuple[ZigbeeLinkSpec, ...] = (ZigbeeLinkSpec(),)
    coordinator: CoordinatorSpec = field(default_factory=CoordinatorSpec)
    mobility: MobilitySpec = field(default_factory=MobilitySpec)
    #: Additional APs of the ESS (multi-AP roaming).  Empty = no roaming:
    #: the compiled scenario is then identical to a pre-roaming one.
    aps: Tuple[ApSpec, ...] = ()
    roaming: RoamingSpec = field(default_factory=RoamingSpec)
    calibration: Calibration = field(default_factory=Calibration)
    #: Named fault plan (see ``repro.faults.presets``) or ``dim:rate``.
    fault_plan: Optional[str] = None

    # ------------------------------------------------------------------
    def observer_link(self) -> Optional[str]:
        """Name of the Wi-Fi link whose receiver hosts the coordinator."""
        if self.coordinator.on is not None:
            return self.coordinator.on
        return self.wifi[0].name if self.wifi else None

    def trajectory_link(self) -> Optional[str]:
        """Name of the link whose sender rides the trajectory (any tech)."""
        if self.mobility.link is not None:
            return self.mobility.link
        if self.wifi:
            return self.wifi[0].name
        return self.zigbee[0].name if self.zigbee else None

    def roaming_link(self) -> Optional[str]:
        """Name of the Wi-Fi link whose sender is the roaming client."""
        if self.roaming.link is not None:
            return self.roaming.link
        return self.wifi[0].name if self.wifi else None

    def fingerprint(self) -> str:
        """Content address of the spec tree (sweep cache, manifests).

        The free-text ``description`` is excluded: editing prose must not
        invalidate cached trials.
        """
        data = to_dict(self)
        data.pop("description", None)
        return stable_hash(data)

    def to_dict(self) -> Dict[str, Any]:
        return to_dict(self)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`SpecError` on any semantic inconsistency."""
        if not self.name:
            raise SpecError("name", "scenario name must be non-empty")
        if self.duration <= 0:
            raise SpecError("duration", f"must be > 0, got {self.duration}")
        if self.grace < 0:
            raise SpecError("grace", f"must be >= 0, got {self.grace}")
        if self.backend not in BACKENDS:
            raise SpecError(
                "backend", f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.location not in LOCATIONS:
            raise SpecError(
                "location",
                f"unknown location {self.location!r}; expected one of {sorted(LOCATIONS)}",
            )
        if self.coordinator.scheme not in SCHEMES:
            raise SpecError(
                "coordinator.scheme",
                f"unknown scheme {self.coordinator.scheme!r}; expected one of {SCHEMES}",
            )
        if self.mobility.kind not in MOBILITY_KINDS:
            raise SpecError(
                "mobility.kind",
                f"unknown mobility {self.mobility.kind!r}; expected one of {MOBILITY_KINDS}",
            )
        wifi_names = [link.name for link in self.wifi]
        zigbee_names = [link.name for link in self.zigbee]
        for scope, names in (("wifi", wifi_names), ("zigbee", zigbee_names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            if dupes:
                raise SpecError(scope, f"duplicate link name(s): {dupes}")
        device_names: Dict[str, str] = {}
        for i, link in enumerate(self.wifi):
            for role, device in (("sender", link.sender), ("receiver", link.receiver)):
                path = f"wifi[{i}].{role}"
                if device in device_names:
                    raise SpecError(
                        path, f"device name {device!r} already used at {device_names[device]}"
                    )
                device_names[device] = path
        for i, link in enumerate(self.zigbee):
            for role, device in (
                ("sender", link.sender_name), ("receiver", link.receiver_name)
            ):
                path = f"zigbee[{i}].{role}"
                if device in device_names:
                    raise SpecError(
                        path, f"device name {device!r} already used at {device_names[device]}"
                    )
                device_names[device] = path
            if link.traffic.n_packets < 1:
                raise SpecError(
                    f"zigbee[{i}].traffic.n_packets",
                    f"must be >= 1, got {link.traffic.n_packets}",
                )
            if link.traffic.interval_mean <= 0:
                raise SpecError(
                    f"zigbee[{i}].traffic.interval_mean",
                    f"must be > 0, got {link.traffic.interval_mean}",
                )
        for i, link in enumerate(self.wifi):
            traffic = link.traffic
            if traffic.kind not in WIFI_TRAFFIC_KINDS:
                raise SpecError(
                    f"wifi[{i}].traffic.kind",
                    f"unknown kind {traffic.kind!r}; expected one of {WIFI_TRAFFIC_KINDS}",
                )
            if not 0.0 <= traffic.high_proportion <= 1.0:
                raise SpecError(
                    f"wifi[{i}].traffic.high_proportion",
                    f"must be in [0, 1], got {traffic.high_proportion}",
                )
        observer = self.observer_link()
        if self.coordinator.scheme in ("bicord", "ecc", "slow-ctc"):
            if observer is None:
                raise SpecError(
                    "coordinator.on",
                    f"scheme {self.coordinator.scheme!r} needs a Wi-Fi link to host "
                    "the coordinator, but the spec has none",
                )
            if observer not in wifi_names:
                raise SpecError(
                    "coordinator.on",
                    f"unknown Wi-Fi link {observer!r}; available: {wifi_names}",
                )
        if self.mobility.kind == "person":
            target = self.mobility.link or observer
            if target is None or target not in wifi_names:
                raise SpecError(
                    "mobility.link",
                    f"person mobility needs a Wi-Fi link, got {target!r} "
                    f"(available: {wifi_names})",
                )
        if self.mobility.kind == "device":
            target = self.mobility.link or (zigbee_names[0] if zigbee_names else None)
            if target is None or target not in zigbee_names:
                raise SpecError(
                    "mobility.link",
                    f"device mobility needs a ZigBee link, got {target!r} "
                    f"(available: {zigbee_names})",
                )
        if self.mobility.kind == "trajectory":
            mobility = self.mobility
            if mobility.model not in TRAJECTORY_MODELS:
                raise SpecError(
                    "mobility.model",
                    f"unknown trajectory model {mobility.model!r}; "
                    f"expected one of {TRAJECTORY_MODELS}",
                )
            if mobility.tick <= 0:
                raise SpecError("mobility.tick", f"must be > 0, got {mobility.tick}")
            if mobility.speed_mps <= 0:
                raise SpecError(
                    "mobility.speed_mps", f"must be > 0, got {mobility.speed_mps}"
                )
            target = self.trajectory_link()
            if target is None or (
                target not in wifi_names and target not in zigbee_names
            ):
                raise SpecError(
                    "mobility.link",
                    f"trajectory mobility needs an existing link, got {target!r} "
                    f"(available: {wifi_names + zigbee_names})",
                )
            if mobility.model == "waypoint":
                if len(mobility.waypoints) < 2:
                    raise SpecError(
                        "mobility.waypoints",
                        f"a waypoint trajectory needs >= 2 waypoints, "
                        f"got {len(mobility.waypoints)}",
                    )
                if mobility.leg_speeds:
                    points = list(mobility.waypoints)
                    closing = mobility.loop and points[-1] != points[0]
                    n_legs = len(points) if closing else len(points) - 1
                    if len(mobility.leg_speeds) != n_legs:
                        raise SpecError(
                            "mobility.leg_speeds",
                            f"need one speed per leg ({n_legs}, loops include "
                            f"the closing leg), got {len(mobility.leg_speeds)}",
                        )
                    if any(s <= 0 for s in mobility.leg_speeds):
                        raise SpecError(
                            "mobility.leg_speeds",
                            f"speeds must be > 0, got {list(mobility.leg_speeds)}",
                        )
            else:  # random-waypoint
                if mobility.area[0] <= 0 or mobility.area[1] <= 0:
                    raise SpecError(
                        "mobility.area",
                        f"area sides must be > 0, got {mobility.area}",
                    )
                if mobility.pause < 0:
                    raise SpecError(
                        "mobility.pause", f"must be >= 0, got {mobility.pause}"
                    )
        if self.aps:
            if self.backend != "generic":
                raise SpecError(
                    "aps", "multi-AP roaming requires the generic backend"
                )
            target = self.roaming_link()
            if target is None or target not in wifi_names:
                raise SpecError(
                    "roaming.link",
                    f"roaming needs a Wi-Fi link whose sender is the client, "
                    f"got {target!r} (available: {wifi_names})",
                )
            for i, ap in enumerate(self.aps):
                path = f"aps[{i}].name"
                if not ap.name:
                    raise SpecError(path, "AP name must be non-empty")
                if ap.name in device_names:
                    raise SpecError(
                        path,
                        f"device name {ap.name!r} already used at {device_names[ap.name]}",
                    )
                device_names[ap.name] = path
            roaming = self.roaming
            if roaming.scan_interval <= 0:
                raise SpecError(
                    "roaming.scan_interval", f"must be > 0, got {roaming.scan_interval}"
                )
            if roaming.handoff_gap < 0:
                raise SpecError(
                    "roaming.handoff_gap", f"must be >= 0, got {roaming.handoff_gap}"
                )
            if roaming.hysteresis_db < 0:
                raise SpecError(
                    "roaming.hysteresis_db", f"must be >= 0, got {roaming.hysteresis_db}"
                )
            if roaming.pingpong_window < 0:
                raise SpecError(
                    "roaming.pingpong_window",
                    f"must be >= 0, got {roaming.pingpong_window}",
                )
            from ..mobility.roaming import (  # late: keep spec import light
                AP_SELECTION_POLICIES,
            )

            if roaming.policy not in AP_SELECTION_POLICIES:
                raise SpecError(
                    "roaming.policy",
                    f"unknown AP-selection policy {roaming.policy!r}; "
                    f"available: {sorted(AP_SELECTION_POLICIES)}",
                )
        if self.backend == "office":
            if len(self.wifi) != 1:
                raise SpecError(
                    "wifi",
                    f"the office backend models exactly one Wi-Fi link (E/F), "
                    f"got {len(self.wifi)}",
                )
            if self.wifi[0].sender != "E" or self.wifi[0].receiver != "F":
                raise SpecError(
                    "wifi[0]",
                    "the office backend names its Wi-Fi devices E/F "
                    f"(got {self.wifi[0].sender!r}/{self.wifi[0].receiver!r})",
                )
            if not self.zigbee:
                raise SpecError("zigbee", "the office backend needs at least one ZigBee link")
            first = self.zigbee[0]
            if first.sender_name != "ZS" or first.receiver_name != "ZR":
                raise SpecError(
                    "zigbee[0]",
                    "the office backend names its base ZigBee pair ZS/ZR "
                    f"(got {first.sender_name!r}/{first.receiver_name!r})",
                )
        if self.fault_plan is not None:
            from ..faults.presets import get_fault_plan  # late: keep spec import light

            try:
                get_fault_plan(self.fault_plan)
            except (KeyError, ValueError) as exc:
                raise SpecError("fault_plan", str(exc)) from None


# ======================================================================
# Strict loading
# ======================================================================
_SCALARS = (bool, int, float, str)


def _type_name(target: Any) -> str:
    return getattr(target, "__name__", str(target))


def _convert(target: Any, value: Any, path: str) -> Any:
    """Coerce ``value`` to ``target`` or raise a path-tagged SpecError."""
    if target is Any:
        return value
    origin = get_origin(target)
    if origin is Union:
        arms = get_args(target)
        if type(None) in arms:
            if value is None:
                return None
            inner = [arm for arm in arms if arm is not type(None)]
            if len(inner) == 1:
                return _convert(inner[0], value, path)
        raise SpecError(path, f"unsupported union {target}")
    if dataclasses.is_dataclass(target):
        if not isinstance(value, dict):
            raise SpecError(
                path,
                f"expected a table/object for {_type_name(target)}, "
                f"got {type(value).__name__}",
            )
        return _dataclass_from(target, value, path)
    if origin is tuple:
        args = get_args(target)
        if not isinstance(value, (list, tuple)):
            raise SpecError(path, f"expected a list, got {type(value).__name__}")
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(
                _convert(args[0], item, f"{path}[{i}]") for i, item in enumerate(value)
            )
        if len(value) != len(args):
            raise SpecError(
                path, f"expected exactly {len(args)} values, got {len(value)}"
            )
        return tuple(
            _convert(arg, item, f"{path}[{i}]")
            for i, (arg, item) in enumerate(zip(args, value))
        )
    if target is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(path, f"expected a number, got {type(value).__name__}")
        return float(value)
    if target is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(path, f"expected an integer, got {type(value).__name__}")
        return value
    if target is bool:
        if not isinstance(value, bool):
            raise SpecError(path, f"expected a boolean, got {type(value).__name__}")
        return value
    if target is str:
        if not isinstance(value, str):
            raise SpecError(path, f"expected a string, got {type(value).__name__}")
        return value
    raise SpecError(path, f"unsupported field type {target!r}")


def _dataclass_from(cls: type, data: Dict[str, Any], path: str) -> Any:
    hints = get_type_hints(cls)
    field_names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - field_names)
    if unknown:
        raise SpecError(
            path or cls.__name__,
            f"unknown key(s) {unknown} for {cls.__name__} (valid: {sorted(field_names)})",
        )
    kwargs: Dict[str, Any] = {}
    for f in dataclasses.fields(cls):
        if f.name not in data:
            continue
        child = f"{path}.{f.name}" if path else f.name
        kwargs[f.name] = _convert(hints[f.name], data[f.name], child)
    return cls(**kwargs)


def spec_from_dict(data: Dict[str, Any]) -> ScenarioSpec:
    """Build and validate a :class:`ScenarioSpec` from a plain dict.

    Unknown keys and ill-typed values raise :class:`SpecError` with the
    exact dotted path of the offending field.
    """
    if not isinstance(data, dict):
        raise SpecError("", f"expected a mapping, got {type(data).__name__}")
    spec = _dataclass_from(ScenarioSpec, data, "")
    spec.validate()
    return spec


def load_spec(path: str) -> ScenarioSpec:
    """Load a spec from a ``.toml`` or ``.json`` file (strictly validated)."""
    text_path = str(path)
    if text_path.endswith(".toml"):
        import tomllib

        with open(text_path, "rb") as handle:
            data = tomllib.load(handle)
    elif text_path.endswith(".json"):
        with open(text_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        raise ValueError(f"unsupported spec format: {text_path!r} (.toml or .json)")
    return spec_from_dict(data)

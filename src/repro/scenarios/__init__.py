"""Declarative scenario subsystem: spec -> compiler -> running simulation.

``repro.scenarios`` turns coexistence deployments into data: a
:class:`ScenarioSpec` describes devices, placements, traffic, the
coordination scheme, mobility, and an optional fault plan; the compiler
builds a ready simulation from spec + seed; procedural generators emit
dense deployments; and a registry exposes a built-in library (office,
smart-home, dense-office, mobile-workshop, priority-streaming, grid,
random-uniform, clustered, vehicular-corridor, campus-roaming) to the
experiment registry, the sweep engine (cache keyed on the spec
fingerprint), and the CLI (``repro scenario list|describe|run``).
"""

from ..experiments.scenario import (
    LinkResult,
    ScenarioResult,
    ScenarioTrialConfig,
    WifiLinkResult,
    run_scenario_trial,
)
from .compiler import CompiledScenario, compile_scenario
from .generators import TRAFFIC_PROFILES, clustered, grid, random_uniform
from .library import (
    SCENARIOS,
    ScenarioEntry,
    campus_roaming,
    get_scenario,
    get_scenario_entry,
    register_scenario,
    scenario_names,
    vehicular_corridor,
)
from .spec import (
    BACKENDS,
    TRAJECTORY_MODELS,
    ApSpec,
    BurstTrafficSpec,
    CoordinatorSpec,
    MobilitySpec,
    RoamingSpec,
    ScenarioSpec,
    SpecError,
    WifiLinkSpec,
    WifiTrafficSpec,
    ZigbeeLinkSpec,
    load_spec,
    round_position,
    spec_from_dict,
)

__all__ = [
    "ApSpec",
    "BACKENDS",
    "BurstTrafficSpec",
    "CompiledScenario",
    "CoordinatorSpec",
    "LinkResult",
    "MobilitySpec",
    "RoamingSpec",
    "SCENARIOS",
    "ScenarioEntry",
    "ScenarioResult",
    "ScenarioSpec",
    "ScenarioTrialConfig",
    "SpecError",
    "TRAFFIC_PROFILES",
    "TRAJECTORY_MODELS",
    "WifiLinkResult",
    "WifiLinkSpec",
    "WifiTrafficSpec",
    "ZigbeeLinkSpec",
    "campus_roaming",
    "clustered",
    "compile_scenario",
    "get_scenario",
    "get_scenario_entry",
    "grid",
    "load_spec",
    "random_uniform",
    "register_scenario",
    "round_position",
    "run_scenario_trial",
    "scenario_names",
    "spec_from_dict",
    "vehicular_corridor",
]

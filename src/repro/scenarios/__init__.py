"""Declarative scenario subsystem: spec -> compiler -> running simulation.

``repro.scenarios`` turns coexistence deployments into data: a
:class:`ScenarioSpec` describes devices, placements, traffic, the
coordination scheme, mobility, and an optional fault plan; the compiler
builds a ready simulation from spec + seed; procedural generators emit
dense deployments; and a registry exposes a built-in library (office,
smart-home, dense-office, mobile-workshop, priority-streaming, grid,
random-uniform, clustered) to the experiment registry, the sweep engine
(cache keyed on the spec fingerprint), and the CLI
(``repro scenario list|describe|run``).
"""

from ..experiments.scenario import (
    LinkResult,
    ScenarioResult,
    ScenarioTrialConfig,
    WifiLinkResult,
    run_scenario_trial,
)
from .compiler import CompiledScenario, compile_scenario
from .generators import TRAFFIC_PROFILES, clustered, grid, random_uniform
from .library import (
    SCENARIOS,
    ScenarioEntry,
    get_scenario,
    get_scenario_entry,
    register_scenario,
    scenario_names,
)
from .spec import (
    BACKENDS,
    BurstTrafficSpec,
    CoordinatorSpec,
    MobilitySpec,
    ScenarioSpec,
    SpecError,
    WifiLinkSpec,
    WifiTrafficSpec,
    ZigbeeLinkSpec,
    load_spec,
    spec_from_dict,
)

__all__ = [
    "BACKENDS",
    "BurstTrafficSpec",
    "CompiledScenario",
    "CoordinatorSpec",
    "LinkResult",
    "MobilitySpec",
    "SCENARIOS",
    "ScenarioEntry",
    "ScenarioResult",
    "ScenarioSpec",
    "ScenarioTrialConfig",
    "SpecError",
    "TRAFFIC_PROFILES",
    "WifiLinkResult",
    "WifiLinkSpec",
    "WifiTrafficSpec",
    "ZigbeeLinkSpec",
    "clustered",
    "compile_scenario",
    "get_scenario",
    "get_scenario_entry",
    "grid",
    "load_spec",
    "random_uniform",
    "register_scenario",
    "run_scenario_trial",
    "scenario_names",
    "spec_from_dict",
]

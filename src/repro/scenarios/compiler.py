"""Scenario compiler: spec + seed -> a ready-to-run simulation.

:func:`compile_scenario` validates a :class:`~repro.scenarios.spec.ScenarioSpec`
and assembles the full object graph — context, devices, coordinator,
nodes, traffic sources, mobility processes, airtime probe — returning a
:class:`CompiledScenario` whose :meth:`~CompiledScenario.run` drives the
simulation and collects a
:class:`~repro.experiments.scenario.ScenarioResult`.

Two backends share one wiring path:

* ``office`` delegates the base E/F/ZS/ZR quartet to
  :func:`~repro.experiments.topology.build_office` (the calibrated Fig. 6
  geometry — positions, CSI model, CCA penalties all come from there) and
  only builds *additional* ZigBee links itself;
* ``generic`` builds every device from the link specs, in spec order, so
  procedurally generated deployments of any size compile the same way.

Compilation is deterministic: the same (spec, seed, calibration) always
produces the same device/RNG-stream wiring, which is what makes scenario
trials cacheable by content address.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from ..baselines import (
    CsmaNode,
    EccCoordinator,
    EccNode,
    PredictiveNode,
    SlowCtcCoordinator,
    SlowCtcNode,
)
from ..core import BicordCoordinator, BicordNode
from ..devices import WifiDevice, ZigbeeDevice
from ..experiments.metrics import AirtimeProbe
from ..experiments.scenario import LinkResult, ScenarioResult, WifiLinkResult
from ..experiments.topology import (
    Calibration,
    build_office,
    location_powermap,
)
from ..faults.presets import get_fault_plan
from ..mobility import (
    RandomWaypointTrajectory,
    RoamingClient,
    TrajectoryProcess,
    WaypointTrajectory,
    make_ap_selection_policy,
)
from ..phy.propagation import Position
from ..serialization import stable_hash
from ..sim.process import Process
from ..traffic.generators import PriorityWifiSource, WifiPacketSource, ZigbeeBurstSource
from .spec import ScenarioSpec, WifiLinkSpec, ZigbeeLinkSpec


class _WifiLinkRuntime:
    """A built Wi-Fi link: devices plus its (optional) traffic source."""

    __slots__ = ("spec", "sender", "receiver", "source", "priority_source")

    def __init__(self, spec: WifiLinkSpec, sender: WifiDevice, receiver: WifiDevice):
        self.spec = spec
        self.sender = sender
        self.receiver = receiver
        self.source: Any = None
        self.priority_source: Optional[PriorityWifiSource] = None


class _ZigbeeLinkRuntime:
    """A built ZigBee link: devices, protocol node, and burst source."""

    __slots__ = ("spec", "sender", "receiver", "node", "source")

    def __init__(self, spec: ZigbeeLinkSpec, sender: ZigbeeDevice, receiver: ZigbeeDevice):
        self.spec = spec
        self.sender = sender
        self.receiver = receiver
        self.node: Any = None
        self.source: Optional[ZigbeeBurstSource] = None


class CompiledScenario:
    """The executable form of a spec: run once, collect the result."""

    def __init__(
        self,
        spec: ScenarioSpec,
        seed: int,
        ctx,
        wifi_links: Dict[str, _WifiLinkRuntime],
        zigbee_links: Dict[str, _ZigbeeLinkRuntime],
        coordinator: Any,
        probe: AirtimeProbe,
        ap_devices: Optional[List[WifiDevice]] = None,
        roaming: Optional[RoamingClient] = None,
        mobility_process: Optional[TrajectoryProcess] = None,
    ):
        self.spec = spec
        self.seed = seed
        self.ctx = ctx
        self.wifi_links = wifi_links
        self.zigbee_links = zigbee_links
        self.coordinator = coordinator
        self.probe = probe
        self.ap_devices = list(ap_devices or [])
        self.roaming = roaming
        self.mobility_process = mobility_process
        self._ran = False

    # ------------------------------------------------------------------
    @property
    def sim(self):
        return self.ctx.sim

    def device(self, name: str):
        """Look up any built device by name (senders and receivers)."""
        for link in self.wifi_links.values():
            if link.sender.name == name:
                return link.sender
            if link.receiver.name == name:
                return link.receiver
        for link in self.zigbee_links.values():
            if link.sender.name == name:
                return link.sender
            if link.receiver.name == name:
                return link.receiver
        for ap in self.ap_devices:
            if ap.name == name:
                return ap
        raise KeyError(f"no device named {name!r} in scenario {self.spec.name!r}")

    # ------------------------------------------------------------------
    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> ScenarioResult:
        """Drive the simulation and collect the scenario's metrics.

        ``until`` overrides the spec's duration; ``max_events`` caps the
        event count (smoke runs).  The grace drain loop only runs for
        uncapped runs — a capped run reports whatever completed in budget.
        """
        if self._ran:
            raise RuntimeError(
                "a CompiledScenario runs once; compile the spec again for a fresh run"
            )
        self._ran = True
        ctx = self.ctx
        registry = ctx.telemetry
        horizon = float(until) if until is not None else self.spec.duration
        with registry.span("scenario.sim"):
            ctx.sim.run(until=horizon, max_events=max_events)
            if max_events is None and self.spec.grace > 0:
                deadline = horizon + self.spec.grace
                while (
                    any(
                        link.node.outstanding_packets
                        for link in self.zigbee_links.values()
                    )
                    and ctx.sim.now < deadline
                ):
                    ctx.sim.run(until=min(ctx.sim.now + 50e-3, deadline))
        duration = ctx.sim.now
        snapshot = self.probe.snapshot(duration)

        if self.coordinator is not None and hasattr(self.coordinator, "stop"):
            self.coordinator.stop()
        for link in self.zigbee_links.values():
            if hasattr(link.node, "stop"):
                link.node.stop()
            if link.source is not None:
                link.source.stop()
        for link in self.wifi_links.values():
            if link.source is not None:
                link.source.stop()
        if self.roaming is not None:
            self.roaming.stop()
        if self.mobility_process is not None:
            self.mobility_process.stop()

        links: Dict[str, LinkResult] = {}
        for name, link in self.zigbee_links.items():
            node = link.node
            offered = (
                link.source.bursts_generated * link.spec.traffic.n_packets
                if link.source is not None
                else 0
            )
            links[name] = LinkResult(
                name=name,
                offered=offered,
                delivered=node.packets_delivered,
                dropped=getattr(node, "packets_dropped", 0),
                payload_bytes=node.delivered_payload_bytes,
                control_packets=getattr(node, "control_packets_sent", 0),
                delays=list(node.packet_delays),
            )
        wifi: Dict[str, WifiLinkResult] = {}
        for name, link in self.wifi_links.items():
            mac = link.sender.mac
            wifi[name] = WifiLinkResult(
                name=name,
                sent=mac.data_sent,
                delivered=mac.data_delivered,
                low_priority_delays=[d for d, p in mac.delay_records if p == 0],
                high_priority_delays=[d for d, p in mac.delay_records if p > 0],
            )

        result = ScenarioResult(
            scenario=self.spec.name,
            seed=self.seed,
            scheme=self.spec.coordinator.scheme,
            duration=duration,
            spec_fingerprint=self.spec.fingerprint(),
            utilization=snapshot,
            links=links,
            wifi=wifi,
            events_processed=ctx.sim.events_processed,
            trace_digest=stable_hash(dict(ctx.trace.counters)),
        )
        if self.coordinator is not None:
            result.whitespace_airtime = self.coordinator.whitespace_airtime
            result.whitespaces_issued = getattr(
                self.coordinator, "grants_issued",
                getattr(self.coordinator, "whitespaces_issued", 0),
            )
            result.current_whitespace = float(
                getattr(
                    self.coordinator, "current_whitespace",
                    getattr(self.coordinator, "whitespace", 0.0),
                )
            )
        if self.roaming is not None:
            result.extra["roam_handoffs"] = float(self.roaming.handoffs)
            result.extra["roam_pingpongs"] = float(self.roaming.pingpongs)
            result.extra["roam_scans"] = float(self.roaming.scans)
            result.extra["roam_gap_ms"] = self.roaming.gap_ms
        if ctx.faults is not None:
            result.extra.update(ctx.faults.counters())
            registry.record_faults(ctx.faults)
        if registry.enabled:
            registry.record_sim(ctx.sim)
            registry.counter("scenario.links").inc(len(links))
            registry.counter("scenario.zigbee_offered").inc(result.packets_offered)
            registry.counter("scenario.zigbee_delivered").inc(result.packets_delivered)
            registry.counter("scenario.control_packets").inc(result.control_packets)
            registry.counter("scenario.whitespaces_issued").inc(result.whitespaces_issued)
            registry.gauge("scenario.channel_utilization").set_max(
                snapshot.channel_utilization
            )
        return result


# ======================================================================
# Compilation
# ======================================================================
def _resolve(value, default):
    return value if value is not None else default


def compile_scenario(
    spec: ScenarioSpec,
    seed: int = 0,
    calibration: Optional[Calibration] = None,
    faults=None,
    trace_kinds=frozenset(),
) -> CompiledScenario:
    """Turn a validated spec + seed into a ready :class:`CompiledScenario`.

    ``calibration`` overrides the spec's own calibration (the sweep engine
    passes it separately so calibration grids work for scenarios too);
    ``faults`` (a :class:`~repro.faults.FaultPlan`) overrides the spec's
    named ``fault_plan``.
    """
    spec.validate()
    cal = calibration if calibration is not None else spec.calibration
    plan = faults
    if plan is None and spec.fault_plan is not None:
        plan = get_fault_plan(spec.fault_plan)

    scheme = spec.coordinator.scheme
    observer_name = spec.observer_link()
    person_link = (
        (spec.mobility.link or observer_name)
        if spec.mobility.kind == "person"
        else None
    )

    wifi_links: Dict[str, _WifiLinkRuntime] = {}
    zigbee_links: Dict[str, _ZigbeeLinkRuntime] = {}

    if spec.backend == "office":
        office = build_office(
            seed=seed,
            location=spec.location,
            calibration=cal,
            trace_kinds=trace_kinds,
            zigbee_receiver_pos=Position(*spec.zigbee[0].receiver_pos),
            faults=plan,
        )
        ctx = office.ctx
        wl = spec.wifi[0]
        wifi_links[wl.name] = _WifiLinkRuntime(wl, office.wifi_sender, office.wifi_receiver)
        zl = spec.zigbee[0]
        zigbee_links[zl.name] = _ZigbeeLinkRuntime(
            zl, office.zigbee_sender, office.zigbee_receiver
        )
        extra_zigbee = spec.zigbee[1:]
    else:
        ctx = cal.context(seed, trace_kinds=trace_kinds, faults=plan)
        for wl in spec.wifi:
            # CSI observation is only wired where something consumes it:
            # the BiCord coordinator's link, or a person-mobility link.
            with_csi = (wl.name == observer_name and scheme == "bicord") or (
                wl.name == person_link
            )
            sender = WifiDevice(
                ctx, wl.sender, Position(*wl.sender_pos),
                channel=_resolve(wl.channel, cal.wifi_channel),
                tx_power_dbm=_resolve(wl.tx_power_dbm, cal.wifi_tx_power_dbm),
                data_rate_mbps=_resolve(wl.data_rate_mbps, cal.wifi_rate_mbps),
                nonwifi_ed_penalty_db=cal.nonwifi_ed_penalty_db,
            )
            receiver = WifiDevice(
                ctx, wl.receiver, Position(*wl.receiver_pos),
                channel=_resolve(wl.channel, cal.wifi_channel),
                tx_power_dbm=_resolve(wl.tx_power_dbm, cal.wifi_tx_power_dbm),
                data_rate_mbps=_resolve(wl.data_rate_mbps, cal.wifi_rate_mbps),
                with_csi=with_csi,
                csi_model=cal.csi_model() if with_csi else None,
                nonwifi_ed_penalty_db=cal.nonwifi_ed_penalty_db,
            )
            wifi_links[wl.name] = _WifiLinkRuntime(wl, sender, receiver)
        extra_zigbee = spec.zigbee

    for zl in extra_zigbee:
        sender = ZigbeeDevice(
            ctx, zl.sender_name, Position(*zl.sender_pos),
            channel=_resolve(zl.channel, cal.zigbee_channel),
            tx_power_dbm=_resolve(zl.tx_power_dbm, cal.zigbee_data_power_dbm),
        )
        receiver = ZigbeeDevice(
            ctx, zl.receiver_name, Position(*zl.receiver_pos),
            channel=_resolve(zl.channel, cal.zigbee_channel),
        )
        zigbee_links[zl.name] = _ZigbeeLinkRuntime(zl, sender, receiver)

    # Candidate APs for roaming (generic backend only, enforced by
    # validate()).  They carry no traffic source of their own; the roaming
    # client retargets the serving link's uplink at whichever AP it joins.
    ap_devices: List[WifiDevice] = []
    for ap in spec.aps:
        ap_devices.append(
            WifiDevice(
                ctx, ap.name, Position(*ap.pos),
                channel=_resolve(ap.channel, cal.wifi_channel),
                tx_power_dbm=_resolve(ap.tx_power_dbm, cal.wifi_tx_power_dbm),
                data_rate_mbps=_resolve(ap.data_rate_mbps, cal.wifi_rate_mbps),
                nonwifi_ed_penalty_db=cal.nonwifi_ed_penalty_db,
            )
        )

    # ------------------------------------------------------------------
    # Wi-Fi traffic
    # ------------------------------------------------------------------
    priority_sources: List[PriorityWifiSource] = []
    for name, link in wifi_links.items():
        traffic = link.spec.traffic
        if traffic.kind == "none":
            continue
        payload = _resolve(traffic.payload_bytes, cal.wifi_payload_bytes)
        interval = _resolve(traffic.interval, cal.wifi_interval)
        if traffic.kind == "priority":
            source = PriorityWifiSource(
                ctx, link.sender.mac, link.spec.receiver,
                high_proportion=traffic.high_proportion,
                total_duration=_resolve(traffic.total_duration, spec.duration),
                phase_duration=traffic.phase_duration,
                payload_bytes=payload, interval=interval,
                name=f"wifi/{name}",
            )
            link.priority_source = source
            priority_sources.append(source)
        else:
            source = WifiPacketSource(
                ctx, link.sender.mac, link.spec.receiver,
                payload_bytes=payload, interval=interval,
                max_packets=traffic.max_packets,
                name=f"wifi/{name}",
            )
        link.source = source

    # ------------------------------------------------------------------
    # Coordinator + per-link protocol nodes
    # ------------------------------------------------------------------
    grant_policy: Optional[Callable[[], bool]] = None
    if (
        spec.coordinator.honor_priority
        and priority_sources
        and scheme in ("bicord", "ecc")
    ):
        def grant_policy() -> bool:
            return all(source.current_priority == 0 for source in priority_sources)

    observer = wifi_links[observer_name].receiver if observer_name else None
    coordinator = None
    if scheme == "bicord":
        coordinator = BicordCoordinator(
            observer, config=spec.coordinator.bicord, grant_policy=grant_policy
        )
    elif scheme == "ecc":
        coordinator = EccCoordinator(
            observer,
            whitespace=spec.coordinator.ecc_whitespace,
            period=spec.coordinator.ecc_period,
            grant_policy=grant_policy,
        )
    elif scheme == "slow-ctc":
        coordinator = SlowCtcCoordinator(observer, config=spec.coordinator.bicord)

    for name, link in zigbee_links.items():
        zl = link.spec
        if scheme == "bicord":
            node = BicordNode(
                link.sender, zl.receiver_name, config=spec.coordinator.bicord,
                powermap=location_powermap(
                    spec.location, default=zl.signaling_power_dbm
                ),
            )
        elif scheme == "ecc":
            node = EccNode(link.sender, zl.receiver_name)
            coordinator.register(node)
        elif scheme == "slow-ctc":
            node = SlowCtcNode(
                link.sender, zl.receiver_name, coordinator,
                config=spec.coordinator.bicord,
            )
        elif scheme == "csma":
            node = CsmaNode(link.sender, zl.receiver_name)
        else:  # predictive
            node = PredictiveNode(link.sender, zl.receiver_name)
        link.node = node
        link.source = ZigbeeBurstSource(
            ctx, node.offer_burst,
            n_packets=zl.traffic.n_packets,
            payload_bytes=zl.traffic.payload_bytes,
            interval_mean=zl.traffic.interval_mean,
            poisson=zl.traffic.poisson,
            max_bursts=zl.traffic.max_bursts,
            name=name,
            start_delay=zl.traffic.start_delay,
        )

    # ------------------------------------------------------------------
    # Mobility
    # ------------------------------------------------------------------
    mobility_process: Optional[TrajectoryProcess] = None
    if spec.mobility.kind == "person":
        csi = wifi_links[person_link].receiver.csi
        rng = ctx.streams.stream("mobility/person")

        def deviation(_now: float) -> float:
            if rng.random() < 0.012:
                return float(rng.uniform(0.3, 0.6))
            return 0.0

        csi.environment_deviation = deviation
    elif spec.mobility.kind == "device":
        target = spec.mobility.link or next(iter(zigbee_links))
        moving = zigbee_links[target].sender
        base = moving.position
        rng = ctx.streams.stream("mobility/device")
        radio = moving.radio

        def wander():
            while True:
                angle = float(rng.uniform(0.0, 2.0 * math.pi))
                radius = float(rng.uniform(0.0, 1.0))
                radio.move_to(
                    base.moved(radius * math.cos(angle), radius * math.sin(angle))
                )
                yield 0.1

        Process(ctx.sim, wander(), name="device-mobility")
    elif spec.mobility.kind == "trajectory":
        m = spec.mobility
        target = spec.trajectory_link()
        mover = (
            wifi_links[target].sender
            if target in wifi_links
            else zigbee_links[target].sender
        )
        if m.model == "waypoint":
            trajectory = WaypointTrajectory(
                m.waypoints,
                speed_mps=m.speed_mps,
                leg_speeds=m.leg_speeds,
                loop=m.loop,
            )
        else:  # random-waypoint
            trajectory = RandomWaypointTrajectory(
                area=m.area,
                speed_mps=m.speed_mps,
                pause=m.pause,
                seed=m.rw_seed,
                origin=m.origin,
            )
        mobility_process = TrajectoryProcess(
            ctx, [mover.radio], trajectory, tick=m.tick,
            name=f"trajectory/{target}",
        )

    # ------------------------------------------------------------------
    # Roaming client
    # ------------------------------------------------------------------
    roaming: Optional[RoamingClient] = None
    if spec.aps:
        r = spec.roaming
        roaming_name = spec.roaming_link()
        client_link = wifi_links[roaming_name]
        policy = make_ap_selection_policy(
            r.policy, hysteresis_db=r.hysteresis_db, min_rssi_dbm=r.min_rssi_dbm
        )
        client_source = client_link.source

        def on_associate(ap_name: str) -> None:
            # Retarget the client's uplink traffic at the serving AP.
            if client_source is not None:
                client_source.destination = ap_name

        roaming = RoamingClient(
            ctx,
            client_link.sender,
            [client_link.receiver] + ap_devices,
            policy,
            scan_interval=r.scan_interval,
            handoff_gap=r.handoff_gap,
            pingpong_window=r.pingpong_window,
            on_associate=on_associate,
            name=roaming_name,
        )

    probe = AirtimeProbe(
        wifi_radios=[
            radio
            for link in wifi_links.values()
            for radio in (link.sender.radio, link.receiver.radio)
        ],
        zigbee_radios=[
            radio
            for link in zigbee_links.values()
            for radio in (link.sender.radio, link.receiver.radio)
        ],
    )
    probe.start(0.0)
    return CompiledScenario(
        spec=spec,
        seed=int(seed),
        ctx=ctx,
        wifi_links=wifi_links,
        zigbee_links=zigbee_links,
        coordinator=coordinator,
        probe=probe,
        ap_devices=ap_devices,
        roaming=roaming,
        mobility_process=mobility_process,
    )

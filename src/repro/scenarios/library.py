"""The scenario registry and the built-in scenario library.

Scenarios register as named factories: a factory takes keyword parameters
(its signature *is* its parameter schema — ``repro scenario list`` shows
it) and returns a :class:`~repro.scenarios.spec.ScenarioSpec`.
:func:`get_scenario` resolves a name (case/underscore-insensitive),
checks the parameters against the factory signature, and pins the spec's
``name`` to the library name so results and manifests always carry the
canonical identity.

The built-ins are the deployments the repo previously hard-coded under
``examples/`` (office, smart-home, dense-office, mobile-workshop,
priority-streaming) plus the three procedural generators from
:mod:`.generators` — every one of them is now sweepable, cacheable,
fault-injectable, and fingerprinted.
"""

from __future__ import annotations

import dataclasses
import inspect
from typing import Callable, Dict, Optional, Tuple

from ..experiments.topology import LOCATIONS, ZIGBEE_RECEIVER_OFFSET
from . import generators
from .spec import (
    ApSpec,
    BurstTrafficSpec,
    CoordinatorSpec,
    MobilitySpec,
    RoamingSpec,
    ScenarioSpec,
    WifiLinkSpec,
    WifiTrafficSpec,
    ZigbeeLinkSpec,
)


@dataclasses.dataclass(frozen=True)
class ScenarioEntry:
    """One registered scenario: a named, parameterized spec factory."""

    name: str
    factory: Callable[..., ScenarioSpec]
    description: str

    @property
    def param_names(self) -> Tuple[str, ...]:
        return tuple(inspect.signature(self.factory).parameters)

    @property
    def defaults(self) -> Dict[str, object]:
        return {
            name: parameter.default
            for name, parameter in inspect.signature(self.factory).parameters.items()
            if parameter.default is not inspect.Parameter.empty
        }


SCENARIOS: Dict[str, ScenarioEntry] = {}


def _canonical(name: str) -> str:
    return name.strip().lower().replace("_", "-")


def register_scenario(
    name: str, factory: Callable[..., ScenarioSpec], description: str = ""
) -> ScenarioEntry:
    """Register (or replace) a scenario factory under ``name``."""
    entry = ScenarioEntry(
        name=_canonical(name),
        factory=factory,
        description=description or (inspect.getdoc(factory) or "").split("\n")[0],
    )
    SCENARIOS[entry.name] = entry
    return entry


def scenario_names() -> Tuple[str, ...]:
    return tuple(sorted(SCENARIOS))


def get_scenario_entry(name: str) -> ScenarioEntry:
    key = _canonical(name)
    if key not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(scenario_names())}"
        )
    return SCENARIOS[key]


def get_scenario(name: str, **params) -> ScenarioSpec:
    """Build the named scenario's spec with factory parameter overrides."""
    entry = get_scenario_entry(name)
    unknown = sorted(set(params) - set(entry.param_names))
    if unknown:
        raise TypeError(
            f"scenario {entry.name!r} got unknown parameter(s) {unknown}; "
            f"valid: {sorted(entry.param_names)}"
        )
    spec = entry.factory(**params)
    if spec.name != entry.name:
        spec = dataclasses.replace(spec, name=entry.name)
    spec.validate()
    return spec


# ======================================================================
# Built-in library
# ======================================================================
def _pos(location: str) -> Tuple[float, float]:
    position = LOCATIONS[location]
    return (position.x, position.y)


def office(
    location: str = "A",
    scheme: str = "bicord",
    n_bursts: int = 30,
    burst_packets: int = 5,
    payload_bytes: int = 50,
    burst_interval: float = 0.2,
    poisson: bool = True,
    mobility: str = "none",
) -> ScenarioSpec:
    """The paper's Fig. 6 office: one Wi-Fi link, one ZigBee pair."""
    sender_pos = _pos(location)
    return ScenarioSpec(
        name="office",
        description=(
            f"Fig. 6 office at location {location}: saturated Wi-Fi vs one "
            f"bursty ZigBee link under {scheme}"
        ),
        duration=n_bursts * burst_interval,
        grace=2.0,
        backend="office",
        location=location,
        wifi=(WifiLinkSpec(),),
        zigbee=(
            ZigbeeLinkSpec(
                name="zigbee",
                sender="ZS",
                receiver="ZR",
                sender_pos=sender_pos,
                receiver_pos=(
                    sender_pos[0] + ZIGBEE_RECEIVER_OFFSET[0],
                    sender_pos[1] + ZIGBEE_RECEIVER_OFFSET[1],
                ),
                traffic=BurstTrafficSpec(
                    n_packets=burst_packets,
                    payload_bytes=payload_bytes,
                    interval_mean=burst_interval,
                    poisson=poisson,
                    max_bursts=n_bursts,
                ),
            ),
        ),
        coordinator=CoordinatorSpec(scheme=scheme),
        mobility=MobilitySpec(kind=mobility),
    )


def smart_home(scheme: str = "bicord", duration: float = 7.0) -> ScenarioSpec:
    """A motion sensor plus a camera trigger sharing one busy Wi-Fi AP."""
    base = _pos("A")
    return ScenarioSpec(
        name="smart-home",
        description=(
            "Smart home: frequent small motion bursts + rare large camera "
            "uploads, both coordinating with one Wi-Fi AP"
        ),
        duration=duration,
        backend="office",
        location="A",
        wifi=(WifiLinkSpec(),),
        zigbee=(
            ZigbeeLinkSpec(
                name="motion",
                sender="ZS",
                receiver="ZR",
                sender_pos=base,
                receiver_pos=(
                    base[0] + ZIGBEE_RECEIVER_OFFSET[0],
                    base[1] + ZIGBEE_RECEIVER_OFFSET[1],
                ),
                traffic=BurstTrafficSpec(
                    n_packets=3, payload_bytes=30, interval_mean=0.25, max_bursts=20
                ),
            ),
            ZigbeeLinkSpec(
                name="camera",
                sender="CAM",
                receiver="CAM-HUB",
                sender_pos=(2.2, 1.3),
                receiver_pos=(3.2, 1.8),
                traffic=BurstTrafficSpec(
                    n_packets=12, payload_bytes=80, interval_mean=1.0,
                    max_bursts=5, start_delay=0.4,
                ),
            ),
        ),
        coordinator=CoordinatorSpec(scheme=scheme),
    )


#: (name, dx, dy, packets/burst, payload, mean interval) — the dense-office
#: sensor table the example used; sensor 0 rides the office's ZS/ZR pair.
DENSE_OFFICE_SENSORS = (
    ("door", 0.0, 0.0, 2, 20, 0.5),
    ("hvac", -0.4, 0.3, 5, 50, 0.3),
    ("meter", -0.8, 0.1, 8, 80, 0.6),
    ("cam-trigger", 0.3, 0.5, 12, 100, 1.2),
)


def dense_office(
    n_sensors: int = 4,
    duration: float = 14.0,
    scheme: str = "bicord",
    max_bursts: Optional[int] = 10,
) -> ScenarioSpec:
    """Four heterogeneous sensor links served by one shared coordinator."""
    if not 1 <= n_sensors <= len(DENSE_OFFICE_SENSORS):
        raise ValueError(
            f"n_sensors must be in [1, {len(DENSE_OFFICE_SENSORS)}], got {n_sensors}"
        )
    base = _pos("A")
    zigbee = []
    for i, (name, dx, dy, packets, payload, interval) in enumerate(
        DENSE_OFFICE_SENSORS[:n_sensors]
    ):
        traffic = BurstTrafficSpec(
            n_packets=packets, payload_bytes=payload, interval_mean=interval,
            max_bursts=max_bursts, start_delay=0.1 * i,
        )
        if i == 0:
            link = ZigbeeLinkSpec(
                name=name, sender="ZS", receiver="ZR",
                sender_pos=base,
                receiver_pos=(
                    base[0] + ZIGBEE_RECEIVER_OFFSET[0],
                    base[1] + ZIGBEE_RECEIVER_OFFSET[1],
                ),
                traffic=traffic,
            )
        else:
            link = ZigbeeLinkSpec(
                name=name, receiver=f"{name}-hub",
                sender_pos=(base[0] + dx, base[1] + dy),
                receiver_pos=(base[0] + dx + 1.1, base[1] + dy + 0.5),
                traffic=traffic,
            )
        zigbee.append(link)
    return ScenarioSpec(
        name="dense-office",
        description=(
            f"{n_sensors} heterogeneous sensor links sharing one coordinator "
            "(the allocator serves the aggregate demand)"
        ),
        duration=duration,
        backend="office",
        location="A",
        wifi=(WifiLinkSpec(),),
        zigbee=tuple(zigbee),
        coordinator=CoordinatorSpec(scheme=scheme),
    )


def mobile_workshop(
    mobility: str = "none", scheme: str = "bicord", n_bursts: int = 25
) -> ScenarioSpec:
    """Sec. VIII-F mobility: a walking person or a wandering ZigBee sender."""
    spec = office(
        scheme=scheme, n_bursts=n_bursts, burst_interval=0.2, mobility=mobility
    )
    return dataclasses.replace(
        spec,
        name="mobile-workshop",
        description=(
            f"Office link with mobility={mobility!r}: CSI perturbation "
            "(person) or a sender wandering within 1 m (device)"
        ),
    )


def priority_streaming(
    scheme: str = "bicord",
    high_proportion: float = 0.3,
    total_duration: float = 6.0,
) -> ScenarioSpec:
    """Sec. VIII-G: Wi-Fi alternates video (high) and file (low) phases."""
    if scheme not in ("bicord", "ecc"):
        raise ValueError(
            f"priority-streaming compares bicord and ecc, got {scheme!r}"
        )
    base = _pos("A")
    return ScenarioSpec(
        name="priority-streaming",
        description=(
            "Prioritized Wi-Fi traffic: the coordinator only grants white "
            "spaces during low-priority phases"
        ),
        duration=total_duration + 0.5,
        backend="office",
        location="A",
        wifi=(
            WifiLinkSpec(
                traffic=WifiTrafficSpec(
                    kind="priority",
                    high_proportion=high_proportion,
                    total_duration=total_duration,
                ),
            ),
        ),
        zigbee=(
            ZigbeeLinkSpec(
                name="zigbee",
                sender="ZS",
                receiver="ZR",
                sender_pos=base,
                receiver_pos=(
                    base[0] + ZIGBEE_RECEIVER_OFFSET[0],
                    base[1] + ZIGBEE_RECEIVER_OFFSET[1],
                ),
                traffic=BurstTrafficSpec(
                    n_packets=5, payload_bytes=50, interval_mean=0.2,
                    max_bursts=int(total_duration / 0.2),
                ),
            ),
        ),
        coordinator=CoordinatorSpec(scheme=scheme),
    )


def vehicular_corridor(
    speed_mps: float = 15.0,
    n_aps: int = 4,
    ap_spacing: float = 30.0,
    scheme: str = "bicord",
    policy: str = "strongest-rssi",
    hysteresis_db: float = 4.0,
    scan_interval: float = 0.25,
    handoff_gap: float = 30e-3,
    tick: float = 0.05,
    wifi_interval: Optional[float] = None,
    duration: Optional[float] = None,
) -> ScenarioSpec:
    """A vehicle driving past a row of roadside APs at ``ap_spacing`` m.

    The client ``CAR`` traverses the corridor once at ``speed_mps``; APs
    sit 6 m off the road.  Each AP boundary crossing forces a handoff, so
    handoff count scales with ``n_aps`` and handoff *rate* with speed —
    the two axes of the ``roaming`` sweep.  A roadside ZigBee link halfway
    down the corridor feels the churn through white-space estimation.
    """
    if n_aps < 2:
        raise ValueError(f"vehicular-corridor needs >= 2 APs, got {n_aps}")
    if speed_mps <= 0:
        raise ValueError(f"speed_mps must be > 0, got {speed_mps}")
    if ap_spacing <= 0:
        raise ValueError(f"ap_spacing must be > 0, got {ap_spacing}")
    end = (n_aps - 1) * ap_spacing
    start_x, stop_x = -4.0, end + 4.0
    if duration is None:
        duration = round((stop_x - start_x) / speed_mps, 3)
    mid = end / 2.0
    return ScenarioSpec(
        name="vehicular-corridor",
        description=(
            f"Vehicle at {speed_mps} m/s past {n_aps} roadside APs "
            f"every {ap_spacing} m under the {policy!r} policy"
        ),
        duration=duration,
        backend="generic",
        wifi=(
            WifiLinkSpec(
                name="car",
                sender="CAR",
                receiver="AP0",
                sender_pos=(start_x, 0.0),
                receiver_pos=(0.0, 6.0),
                traffic=WifiTrafficSpec(interval=wifi_interval),
            ),
        ),
        zigbee=(
            ZigbeeLinkSpec(
                name="roadside",
                sender_pos=(mid, 2.0),
                receiver_pos=(mid + 1.0, 2.4),
                traffic=BurstTrafficSpec(
                    n_packets=4, payload_bytes=40, interval_mean=0.3
                ),
            ),
        ),
        coordinator=CoordinatorSpec(scheme=scheme),
        mobility=MobilitySpec(
            kind="trajectory",
            model="waypoint",
            waypoints=((start_x, 0.0), (stop_x, 0.0)),
            speed_mps=speed_mps,
            tick=tick,
        ),
        aps=tuple(
            ApSpec(name=f"AP{i}", pos=(i * ap_spacing, 6.0))
            for i in range(1, n_aps)
        ),
        roaming=RoamingSpec(
            policy=policy,
            hysteresis_db=hysteresis_db,
            scan_interval=scan_interval,
            handoff_gap=handoff_gap,
        ),
    )


#: Campus AP sites: the roaming link's receiver is AP0 at the first site;
#: further APs fill the remaining corners of the quad walk.
CAMPUS_AP_SITES = ((0.0, 5.0), (16.0, 5.0), (8.0, -5.0))


def campus_roaming(
    speed_mps: float = 1.5,
    n_aps: int = 3,
    scheme: str = "bicord",
    policy: str = "strongest-rssi",
    hysteresis_db: float = 3.0,
    scan_interval: float = 0.25,
    tick: float = 0.1,
    duration: float = 12.0,
    wifi_interval: Optional[float] = None,
) -> ScenarioSpec:
    """A pedestrian looping a campus quad covered by two or three APs.

    The walker ``PED`` loops the 16 m x 6 m quad; the AP layout puts each
    leg decisively closest to a different AP (path-loss margins well above
    the hysteresis), so every lap produces handoffs and — with a sticky or
    over-hysteretic policy — measurable ping-pong suppression.
    """
    if not 2 <= n_aps <= len(CAMPUS_AP_SITES):
        raise ValueError(
            f"n_aps must be in [2, {len(CAMPUS_AP_SITES)}], got {n_aps}"
        )
    if speed_mps <= 0:
        raise ValueError(f"speed_mps must be > 0, got {speed_mps}")
    return ScenarioSpec(
        name="campus-roaming",
        description=(
            f"Pedestrian at {speed_mps} m/s looping a quad under {n_aps} APs "
            f"with the {policy!r} policy"
        ),
        duration=duration,
        backend="generic",
        wifi=(
            WifiLinkSpec(
                name="ped",
                sender="PED",
                receiver="AP0",
                sender_pos=(0.0, 0.0),
                receiver_pos=CAMPUS_AP_SITES[0],
                traffic=WifiTrafficSpec(interval=wifi_interval),
            ),
        ),
        zigbee=(
            ZigbeeLinkSpec(
                name="quad-sensor",
                sender_pos=(8.0, 3.0),
                receiver_pos=(9.0, 3.4),
                traffic=BurstTrafficSpec(
                    n_packets=3, payload_bytes=30, interval_mean=0.25
                ),
            ),
        ),
        coordinator=CoordinatorSpec(scheme=scheme),
        mobility=MobilitySpec(
            kind="trajectory",
            model="waypoint",
            waypoints=((0.0, 0.0), (16.0, 0.0), (16.0, 6.0), (0.0, 6.0)),
            speed_mps=speed_mps,
            loop=True,
            tick=tick,
        ),
        aps=tuple(
            ApSpec(name=f"AP{i}", pos=CAMPUS_AP_SITES[i])
            for i in range(1, n_aps)
        ),
        roaming=RoamingSpec(
            policy=policy,
            hysteresis_db=hysteresis_db,
            scan_interval=scan_interval,
        ),
    )


register_scenario(
    "office", office, "The paper's Fig. 6 office: one Wi-Fi link, one ZigBee pair"
)
register_scenario(
    "smart-home", smart_home,
    "Motion sensor + camera trigger sharing one busy Wi-Fi AP",
)
register_scenario(
    "dense-office", dense_office,
    "Four heterogeneous sensor links served by one shared coordinator",
)
register_scenario(
    "mobile-workshop", mobile_workshop,
    "Office link with a walking person or a wandering ZigBee sender",
)
register_scenario(
    "priority-streaming", priority_streaming,
    "Wi-Fi alternates video/file phases; grants only in low-priority phases",
)
register_scenario(
    "grid", generators.grid,
    "Procedural: N ZigBee links on a deterministic square grid",
)
register_scenario(
    "random-uniform", generators.random_uniform,
    "Procedural: N ZigBee links dropped uniformly at random over an area",
)
register_scenario(
    "clustered", generators.clustered,
    "Procedural: ZigBee links grouped into seeded hotspot clusters",
)
register_scenario(
    "vehicular-corridor", vehicular_corridor,
    "A vehicle driving past a row of roadside APs, roaming as it goes",
)
register_scenario(
    "campus-roaming", campus_roaming,
    "A pedestrian looping a campus quad covered by two or three APs",
)

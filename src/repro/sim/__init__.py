"""Discrete-event simulation kernel: engine, RNG streams, tracing, units."""

from .engine import (
    SCHEDULER_BACKENDS,
    Event,
    SimulationError,
    Simulator,
    resolve_backend,
    set_default_backend,
)
from .process import Process
from .rng import RandomStreams
from .trace import TraceRecord, TraceRecorder
from .units import (
    MIN_POWER_DBM,
    MSEC,
    USEC,
    db_to_linear,
    dbm_to_mw,
    linear_to_db,
    msec,
    mw_to_dbm,
    thermal_noise_dbm,
    usec,
)

__all__ = [
    "SCHEDULER_BACKENDS",
    "Event",
    "SimulationError",
    "Simulator",
    "resolve_backend",
    "set_default_backend",
    "Process",
    "RandomStreams",
    "TraceRecord",
    "TraceRecorder",
    "MIN_POWER_DBM",
    "MSEC",
    "USEC",
    "db_to_linear",
    "dbm_to_mw",
    "linear_to_db",
    "msec",
    "mw_to_dbm",
    "thermal_noise_dbm",
    "usec",
]

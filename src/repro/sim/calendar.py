"""Array-based calendar-queue scheduler backend.

A calendar queue (Brown 1988) spreads future events over an array of time
buckets — a "time wheel" — so scheduling is an O(1) append and dispatch
amortizes to O(1) per event: when the wheel reaches a bucket, the bucket is
sorted once (C timsort) and dispatched as a **batch**, replacing the
per-event ``heappush``/``heappop`` pair of the heap backend with one list
append and one batched sort.  Events beyond the wheel's horizon wait in an
unsorted overflow list and are migrated into buckets when the wheel reaches
them.

Invariants that make the firing order bitwise-identical to the heap oracle
(:class:`repro.sim.engine.Simulator`):

* Every in-wheel event's bucket index is ``day & mask`` where
  ``day = int(time / bucket_width)``; the wheel window never exceeds
  ``nbuckets`` days, so a bucket only ever holds events of a single day and
  sorting it by ``(time, seq)`` yields the exact global dispatch order for
  that day.
* Overflow events always lie at or beyond the wheel horizon, and the
  horizon only advances when the wheel is drained, so no overflow event can
  be earlier than any in-wheel event.
* Callbacks that schedule into the day currently being dispatched are
  merge-inserted (``bisect.insort``) into the live batch at the consumption
  pointer, preserving ``(time, seq)`` order for zero-delay chains.

Two implementation notes that matter for throughput (this is the repo's
tightest loop — see ``BENCH_kernels.json``):

* The hot paths are closures over plain cell variables rather than methods
  reading ``self`` attributes: cell access is measurably cheaper than
  attribute access in CPython.  The class still subclasses
  :class:`~repro.sim.engine.Simulator`, so ``isinstance`` checks,
  telemetry, and every call site keep working unchanged.
* Queue entries are the :class:`~repro.sim.engine.Event` objects
  themselves, not ``(time, seq, event)`` wrapper tuples.  That halves the
  GC-tracked allocations per scheduled event, which halves the collector's
  generational scan pressure — a double-digit percentage of wall time on
  allocation-heavy workloads.

Accounting matches the engine contract: ``queue_hwm`` is the *pending*
high-water mark (cancelled entries excluded), ``pending_count()`` is an O(1)
live counter, and cancelled entries are compacted away once they outnumber
pending ones.  ``events_processed`` is synchronized at batch boundaries and
on ``run()``/``step()`` exit rather than per event.
"""

from __future__ import annotations

import time as _time
from bisect import insort
from math import inf
from operator import attrgetter
from typing import Any, Callable, Optional

from .engine import (
    COMPACT_MIN_CANCELLED,
    Event,
    SimulationError,
    Simulator,
    register_backend,
)

_new_event = object.__new__

#: Sort key giving the heap oracle's exact dispatch order (FIFO tie-break).
_order = attrgetter("time", "seq")

#: Default wheel geometry.  256 buckets of 40 µs cover a 10.24 ms window —
#: a few Wi-Fi frame exchanges — which keeps buckets at a handful of events
#: for the paper's MAC-timescale workloads while staying small enough that
#: empty-bucket scans are cheap.
DEFAULT_NBUCKETS = 256
DEFAULT_BUCKET_WIDTH = 40e-6


class CalendarSimulator(Simulator):
    """Calendar-queue (time wheel + overflow list) scheduler backend.

    Drop-in replacement for the heap backend: same API, same firing order,
    same counters.  ``nbuckets`` must be a power of two; ``bucket_width`` is
    the time span of one bucket in simulated seconds.
    """

    backend_name = "calendar"

    def __init__(
        self,
        backend: Optional[str] = None,
        nbuckets: int = DEFAULT_NBUCKETS,
        bucket_width: float = DEFAULT_BUCKET_WIDTH,
    ) -> None:
        if backend not in (None, self.backend_name):
            raise ValueError(
                f"{type(self).__name__} implements backend "
                f"{self.backend_name!r}, not {backend!r}"
            )
        if nbuckets < 2 or nbuckets & (nbuckets - 1):
            raise ValueError(f"nbuckets must be a power of two >= 2, got {nbuckets}")
        if not bucket_width > 0.0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")

        self.now: float = 0.0
        self.events_processed: int = 0
        self.compactions: int = 0
        self.wall_time: float = 0.0
        self.nbuckets = nbuckets
        self.bucket_width = bucket_width

        sim = self
        mask = nbuckets - 1
        inv = 1.0 / bucket_width
        buckets = [[] for _ in range(nbuckets)]
        # Pre-bound ``list.append`` per bucket: schedule() calls through this
        # table, skipping the attribute lookup.  Kept in sync wherever a
        # bucket list is replaced (refill extraction, compaction).
        appends = [b.append for b in buckets]
        overflow: list = []
        new_event = _new_event
        to_day = int  # builtin alias in a closure cell (cheaper than global)

        # Closure state.  ``ready`` is the current day's batch, sorted by
        # (time, seq) and consumed by index ``rp`` so interrupted batches
        # (until / stop / max_events) resume exactly where they left off.
        ready: list = []
        rp = 0
        seq = 0
        day = 0  # day currently (or last) dispatched; buckets hold day > this
        horizon = nbuckets  # first day that must go to the overflow list
        wheel = 0  # events currently in buckets (cancelled included)
        pending = 0
        hwm = 0
        cancelled_in_q = 0
        running = False
        stopped = False

        # --------------------------------------------------------------
        # Scheduling
        # --------------------------------------------------------------
        def schedule(delay: float, callback: Callable[..., Any], *args: Any) -> Event:
            nonlocal seq, wheel, pending, hwm
            if delay < 0.0:
                raise SimulationError(f"cannot schedule {delay} s in the past")
            t = sim.now + delay
            s = seq
            seq = s + 1
            ev = new_event(Event)
            ev.time = t
            ev.seq = s
            ev.callback = callback
            ev.args = args
            ev.cancelled = False
            ev.fired = False
            ev._sim = sim
            try:
                d = to_day(t * inv)
            except (OverflowError, ValueError):
                raise SimulationError(
                    f"calendar backend requires finite event times, got t={t}"
                ) from None
            if d > day:
                if d < horizon:
                    appends[d & mask](ev)
                    wheel += 1
                else:
                    overflow.append(ev)
            else:
                insort(ready, ev, rp, key=_order)
            p = pending + 1
            pending = p
            if p > hwm:
                hwm = p
            return ev

        def schedule_at(t: float, callback: Callable[..., Any], *args: Any) -> Event:
            nonlocal seq, wheel, pending, hwm
            if t < sim.now:
                raise SimulationError(
                    f"cannot schedule at t={t} before current time t={sim.now}"
                )
            s = seq
            seq = s + 1
            ev = new_event(Event)
            ev.time = t
            ev.seq = s
            ev.callback = callback
            ev.args = args
            ev.cancelled = False
            ev.fired = False
            ev._sim = sim
            try:
                d = to_day(t * inv)
            except (OverflowError, ValueError):
                raise SimulationError(
                    f"calendar backend requires finite event times, got t={t}"
                ) from None
            if d > day:
                if d < horizon:
                    appends[d & mask](ev)
                    wheel += 1
                else:
                    overflow.append(ev)
            else:
                insort(ready, ev, rp, key=_order)
            p = pending + 1
            pending = p
            if p > hwm:
                hwm = p
            return ev

        # --------------------------------------------------------------
        # Wheel advance
        # --------------------------------------------------------------
        def refill() -> bool:
            """Load the next non-empty day's bucket into ``ready``.

            Returns False when the queue is fully drained.  When the wheel
            is empty, jumps straight to the earliest overflow day and
            migrates the overflow events that fall inside the new window —
            overflow events are never earlier than in-wheel ones, so the
            jump cannot skip anything.
            """
            nonlocal day, horizon, wheel, ready, rp
            if wheel == 0:
                if not overflow:
                    return False
                day = min(int(e.time * inv) for e in overflow) - 1
                horizon = day + 1 + nbuckets
                keep = []
                for ev in overflow:
                    d = int(ev.time * inv)
                    if d < horizon:
                        buckets[d & mask].append(ev)
                        wheel += 1
                    else:
                        keep.append(ev)
                overflow[:] = keep
            d = day + 1
            while True:
                b = buckets[d & mask]
                if b:
                    b.sort(key=_order)
                    nb = buckets[d & mask] = []
                    appends[d & mask] = nb.append
                    wheel -= len(b)
                    day = d
                    ready = b
                    rp = 0
                    return True
                d += 1

        # --------------------------------------------------------------
        # Execution
        # --------------------------------------------------------------
        def run(until: Optional[float] = None, max_events: Optional[int] = None) -> None:
            nonlocal rp, running, stopped, pending, cancelled_in_q
            if running:
                raise SimulationError("simulator is not reentrant")
            running = True
            stopped = False
            fired = 0
            wall_start = _time.perf_counter()
            try:
                if until is None and max_events is None:
                    # Tight loop for the drain-everything case: no deadline
                    # or budget checks in the per-event path.
                    i = rp
                    batch = ready
                    while True:
                        if i >= len(batch):
                            rp = i
                            sim.events_processed += fired
                            fired = 0
                            if not refill():
                                break
                            batch = ready
                            i = 0
                            continue
                        ev = batch[i]
                        i += 1
                        if ev.cancelled:
                            cancelled_in_q -= 1
                            continue
                        sim.now = ev.time
                        ev.fired = True
                        pending -= 1
                        fired += 1
                        rp = i
                        ev.callback(*ev.args)
                        i = rp
                        batch = ready
                        if stopped:
                            break
                    rp = i
                    sim.events_processed += fired
                    return
                until_v = inf if until is None else until
                budget = inf if max_events is None else max_events
                i = rp
                batch = ready
                while True:
                    if i >= len(batch):
                        rp = i
                        sim.events_processed += fired
                        fired = 0
                        if not refill():
                            break
                        batch = ready
                        i = 0
                        continue
                    ev = batch[i]
                    if ev.time > until_v:
                        break
                    i += 1
                    if ev.cancelled:
                        cancelled_in_q -= 1
                        continue
                    if budget <= 0.0:
                        i -= 1
                        break
                    budget -= 1.0
                    sim.now = ev.time
                    ev.fired = True
                    pending -= 1
                    fired += 1
                    rp = i
                    ev.callback(*ev.args)
                    i = rp
                    batch = ready
                    if stopped:
                        break
                rp = i
                sim.events_processed += fired
                if until is not None and sim.now < until and not stopped:
                    sim.now = until
            finally:
                running = False
                sim.wall_time += _time.perf_counter() - wall_start

        def step() -> bool:
            nonlocal rp, pending, cancelled_in_q
            while True:
                if rp >= len(ready):
                    if not refill():
                        return False
                ev = ready[rp]
                rp += 1
                if ev.cancelled:
                    cancelled_in_q -= 1
                    continue
                sim.now = ev.time
                ev.fired = True
                pending -= 1
                sim.events_processed += 1
                ev.callback(*ev.args)
                return True

        def stop() -> None:
            nonlocal stopped
            stopped = True

        def peek() -> Optional[float]:
            """Time of the next pending event, or None when drained.

            Like the heap backend's ``peek`` this prunes cancelled entries
            from the consumption frontier (and may rotate the wheel past
            empty buckets), so ``peek``/``run``/``step`` always agree on
            what fires next.
            """
            nonlocal rp, cancelled_in_q
            while True:
                while rp < len(ready):
                    ev = ready[rp]
                    if not ev.cancelled:
                        return ev.time
                    rp += 1
                    cancelled_in_q -= 1
                if not refill():
                    return None

        # --------------------------------------------------------------
        # Accounting
        # --------------------------------------------------------------
        def note_cancel() -> None:
            nonlocal pending, cancelled_in_q
            pending -= 1
            cancelled_in_q += 1
            if cancelled_in_q > COMPACT_MIN_CANCELLED and cancelled_in_q > pending:
                compact()

        def compact() -> None:
            """Filter cancelled events out of every live region.

            ``ready`` is filtered in place from the consumption pointer so
            an in-flight dispatch loop (compaction runs from callbacks via
            ``Event.cancel``) keeps iterating the same list object.
            """
            nonlocal wheel, cancelled_in_q
            ready[rp:] = [e for e in ready[rp:] if not e.cancelled]
            for idx, b in enumerate(buckets):
                if b:
                    nb = buckets[idx] = [e for e in b if not e.cancelled]
                    appends[idx] = nb.append
            overflow[:] = [e for e in overflow if not e.cancelled]
            wheel = sum(len(b) for b in buckets)
            cancelled_in_q = 0
            sim.compactions += 1

        def pending_count() -> int:
            return pending

        def queue_length() -> int:
            return (len(ready) - rp) + wheel + len(overflow)

        def stats() -> dict:
            return {
                "pending": pending,
                "hwm": hwm,
                "cancelled_in_queue": cancelled_in_q,
                "wheel": wheel,
                "overflow": len(overflow),
                "ready": len(ready) - rp,
                "day": day,
                "horizon": horizon,
            }

        # Bind the closures as instance attributes: lookups hit the instance
        # dict directly (no descriptor binding), which is part of the win.
        self.schedule = schedule
        self.schedule_at = schedule_at
        self.run = run
        self.step = step
        self.stop = stop
        self.peek = peek
        self.pending_count = pending_count
        self.queue_length = queue_length
        self._note_cancel = note_cancel
        self._compact = compact
        self._stats = stats

    # ------------------------------------------------------------------
    # Counter views (cold paths; the authoritative values live in closures)
    # ------------------------------------------------------------------
    @property
    def queue_hwm(self) -> int:
        """Highest the *pending* count ever got (cancelled entries excluded)."""
        return self._stats()["hwm"]

    @property
    def _pending(self) -> int:
        return self._stats()["pending"]

    @property
    def _cancelled_in_queue(self) -> int:
        return self._stats()["cancelled_in_queue"]


register_backend("calendar", CalendarSimulator)

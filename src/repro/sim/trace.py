"""Structured trace recording.

Devices and protocol modules emit trace records (``kind`` plus free-form
fields) instead of printing.  Experiments and tests then query the trace:
counting retransmissions, extracting white-space intervals, checking
invariants such as "no ZigBee data frame overlaps an active Wi-Fi data frame
inside a granted white space".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: a timestamp, a kind, and arbitrary fields."""

    time: float
    kind: str
    fields: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


@dataclass
class TraceRecorder:
    """Append-only trace with simple querying.

    Recording can be restricted to a set of kinds (``enabled_kinds``) to keep
    long simulations lean; counters are always maintained for every kind.

    Stored records are additionally indexed per kind, so :meth:`of_kind`
    (which experiments call in inner loops over long traces) is a dict
    lookup plus copy instead of a full scan of every record.
    """

    enabled_kinds: Optional[set] = None
    records: List[TraceRecord] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    _by_kind: Dict[str, List[TraceRecord]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        # Rebuild the index if the recorder was constructed pre-populated.
        for record in self.records:
            self._by_kind.setdefault(record.kind, []).append(record)

    def record(self, time: float, kind: str, **fields: Any) -> None:
        """Append a record (if the kind is enabled) and bump its counter."""
        self.counters[kind] = self.counters.get(kind, 0) + 1
        if self.enabled_kinds is not None and kind not in self.enabled_kinds:
            return
        entry = TraceRecord(time, kind, fields)
        self.records.append(entry)
        bucket = self._by_kind.get(kind)
        if bucket is None:
            self._by_kind[kind] = [entry]
        else:
            bucket.append(entry)

    def count(self, kind: str) -> int:
        """Total number of records of ``kind`` seen (enabled or not)."""
        return self.counters.get(kind, 0)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All stored records of ``kind`` in time order (indexed, O(matches))."""
        return list(self._by_kind.get(kind, ()))

    def where(self, predicate: Callable[[TraceRecord], bool]) -> Iterator[TraceRecord]:
        """Lazily iterate over stored records matching ``predicate``."""
        return (r for r in self.records if predicate(r))

    def between(self, start: float, end: float, kind: Optional[str] = None) -> List[TraceRecord]:
        """Stored records with ``start <= time < end``, optionally of one kind."""
        pool = self.records if kind is None else self._by_kind.get(kind, [])
        return [r for r in pool if start <= r.time < end]

    def clear(self) -> None:
        """Drop stored records and counters."""
        self.records.clear()
        self.counters.clear()
        self._by_kind.clear()

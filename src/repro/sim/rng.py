"""Deterministic, named random-number streams.

Every stochastic component of the simulator (fading on each link, MAC
backoffs of each device, traffic arrivals, CSI noise, ...) draws from its own
stream, derived from a single experiment seed and a stable string name.  This
has two consequences that matter for experiments:

* runs are bit-reproducible given the seed, and
* adding a new random consumer does not perturb the draws seen by existing
  components (streams are independent, not interleaved).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence

import numpy as np


def _stable_hash(name: str) -> int:
    """A platform-independent 64-bit hash of ``name`` (``hash()`` is salted)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


# ----------------------------------------------------------------------
# Batched stream seeding
# ----------------------------------------------------------------------
# ``SeedSequence`` construction dominates the cost of creating a stream
# (~15 µs each), and the vectorized medium kernel creates O(radios) fading
# streams per new transmitter.  The mixing algorithm behind
# ``SeedSequence.generate_state`` (O'Neill's seed_seq hash) is simple 32-bit
# arithmetic, so we replicate it *vectorized across stream names* and hand the
# resulting state words to ``PCG64`` through a tiny ``ISeedSequence`` shim —
# the bit generator then seeds itself through its normal C path.  The
# replication is verified against ``numpy.random.SeedSequence`` at first use
# (per process); on any mismatch the batch API silently falls back to the
# one-at-a-time reference path, so stream values can never drift.
_XSHIFT = np.uint32(16)
_MASK32 = 0xFFFFFFFF
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_L = np.uint32(0xCA01F9DD)
_MIX_R = np.uint32(0x4973F715)
_POOL_SIZE = 4

#: Tri-state: None = unverified, True = replication verified, False = the
#: installed numpy disagrees with the replication (use the reference path).
_FAST_SEEDING_OK: Optional[bool] = None


class _SeedWords(np.random.bit_generator.ISeedSequence):
    """Minimal ``ISeedSequence`` handing precomputed state words to PCG64.

    A *real* subclass (not an ABC ``register``): the ``isinstance`` check in
    the ``PCG64`` constructor resolves through the MRO in nanoseconds, where
    a virtual subclass pays the ABC registry path on every construction.
    """

    def __init__(self, words: np.ndarray):
        self._words = words

    def generate_state(self, n_words: int, dtype=np.uint32) -> np.ndarray:
        if n_words != 4 or dtype is not np.uint64:  # pragma: no cover - guard
            raise ValueError("precomputed seed words serve PCG64 only")
        return self._words


def _entropy_words(value: int) -> List[int]:
    """``value`` as little-endian uint32 words (numpy's int coercion)."""
    if value == 0:
        return [0]
    words = []
    while value > 0:
        words.append(value & _MASK32)
        value >>= 32
    return words


def _batch_seed_words(entropy: int, hashes: Sequence[int]) -> np.ndarray:
    """State words of ``SeedSequence(entropy, spawn_key=(h,))`` for many ``h``.

    Returns an ``(len(hashes), 4)`` uint64 array, vectorizing the seed_seq
    pool mixing across all spawn keys at once.  Every hash must need exactly
    two uint32 words (i.e. ``h >= 2**32``); the caller routes rarer shapes to
    the reference path.
    """
    hs = np.asarray(hashes, dtype=np.uint64)
    m = hs.shape[0]
    run = _entropy_words(entropy)
    if len(run) < _POOL_SIZE:
        # numpy zero-pads the run entropy to the pool size whenever a spawn
        # key is present, so spawn words never alias entropy words.
        run = run + [0] * (_POOL_SIZE - len(run))
    assembled = [np.full(m, w, dtype=np.uint32) for w in run]
    assembled.append((hs & np.uint64(_MASK32)).astype(np.uint32))
    assembled.append((hs >> np.uint64(32)).astype(np.uint32))

    hash_const = _INIT_A

    def hashmix(value: np.ndarray) -> np.ndarray:
        nonlocal hash_const
        value = value ^ np.uint32(hash_const)
        hash_const = (hash_const * _MULT_A) & _MASK32
        value = value * np.uint32(hash_const)
        return value ^ (value >> _XSHIFT)

    def mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        result = x * _MIX_L - y * _MIX_R
        return result ^ (result >> _XSHIFT)

    pool = [hashmix(assembled[i]) for i in range(_POOL_SIZE)]
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                pool[i_dst] = mix(pool[i_dst], hashmix(pool[i_src]))
    for i_src in range(_POOL_SIZE, len(assembled)):
        for i_dst in range(_POOL_SIZE):
            # hashmix advances its constant per (src, dst) pair, exactly as
            # the reference implementation does — it cannot be hoisted.
            pool[i_dst] = mix(pool[i_dst], hashmix(assembled[i_src]))

    hash_const = _INIT_B
    out32 = np.empty((8, m), dtype=np.uint64)
    src = 0
    for k in range(8):
        value = pool[src]
        src = (src + 1) % _POOL_SIZE
        value = value ^ np.uint32(hash_const)
        hash_const = (hash_const * _MULT_B) & _MASK32
        value = value * np.uint32(hash_const)
        out32[k] = (value ^ (value >> _XSHIFT)).astype(np.uint64)
    words = np.empty((m, 4), dtype=np.uint64)
    for i in range(4):
        words[:, i] = out32[2 * i] | (out32[2 * i + 1] << np.uint64(32))
    return words


def _verify_fast_seeding() -> bool:
    """One-time self check of the batched replication against numpy."""
    probes = [
        (0, [2**32, 2**64 - 1]),
        (7, [0x9E3779B97F4A7C15, 0xD1B54A32D192ED03]),
        (2**63 - 1, [0x123456789ABCDEF0, 2**32 + 1]),
        (123456789, [_stable_hash("fading/A->B"), _stable_hash("shadowing/A|B")]),
    ]
    try:
        for entropy, hashes in probes:
            words = _batch_seed_words(entropy, hashes)
            for j, h in enumerate(hashes):
                seq = np.random.SeedSequence(entropy=entropy, spawn_key=(h,))
                if list(map(int, seq.generate_state(4, np.uint64))) != [
                    int(w) for w in words[j]
                ]:
                    return False
                ref = np.random.PCG64(seq).state["state"]
                fast = np.random.PCG64(_SeedWords(words[j])).state["state"]
                if ref != fast:
                    return False
    except Exception:  # pragma: no cover - any surprise disables the fast path
        return False
    return True


def _fast_seeding_ok() -> bool:
    global _FAST_SEEDING_OK
    if _FAST_SEEDING_OK is None:
        _FAST_SEEDING_OK = _verify_fast_seeding()
    return _FAST_SEEDING_OK


class RandomStreams:
    """Factory of independent :class:`numpy.random.Generator` streams.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.stream("fading/A->F")
    >>> b = streams.stream("mac/zigbee-1")
    >>> a is streams.stream("fading/A->F")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(_stable_hash(name),))
            generator = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = generator
        return generator

    def stream_many(self, names: Sequence[str]) -> List[np.random.Generator]:
        """Return generators for ``names``, batch-seeding the missing ones.

        Bitwise-identical to calling :meth:`stream` per name, but amortizes
        ``SeedSequence`` construction across all cache misses (~4× cheaper per
        stream).  Names whose stable hash fits in 32 bits (probability
        ``2**-32`` each) and negative seeds take the reference path.
        """
        streams = self._streams
        missing = [n for n in names if n not in streams]
        if len(missing) >= 2 and self.seed >= 0 and _fast_seeding_ok():
            hashes = [_stable_hash(n) for n in missing]
            batch = [(n, h) for n, h in zip(missing, hashes) if h >= 2**32]
            if batch:
                words = _batch_seed_words(self.seed, [h for _, h in batch])
                pcg64 = np.random.PCG64
                generator = np.random.Generator
                seed_words = _SeedWords
                for j, (n, _) in enumerate(batch):
                    streams[n] = generator(pcg64(seed_words(words[j])))
        out = []
        append = out.append
        stream = self.stream
        for n in names:
            g = streams.get(n)
            append(g if g is not None else stream(n))
        return out

    def fork(self, salt: str) -> "RandomStreams":
        """Derive an independent family of streams (e.g. per repetition).

        The child seed is produced by SeedSequence mixing of (parent seed,
        hash("fork/" + salt)) rather than an affine combination: the old
        ``seed * 1000003 + hash(salt)`` scheme was invertible per-salt, so
        distinct (seed, salt) pairs could collide exactly (e.g. a fork of
        seed 0 collided with a root ``RandomStreams`` whose seed was
        ``_stable_hash(salt) % 2**63``), correlating supposedly independent
        repetitions.  The "fork/" prefix also keeps fork-derived entropy
        disjoint from the ``stream(name)`` spawn-key namespace.
        """
        seq = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(_stable_hash("fork/" + salt),)
        )
        return RandomStreams(seed=int(seq.generate_state(1, np.uint64)[0]) % (2**63))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self.seed}, streams={len(self._streams)})"

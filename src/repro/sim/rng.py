"""Deterministic, named random-number streams.

Every stochastic component of the simulator (fading on each link, MAC
backoffs of each device, traffic arrivals, CSI noise, ...) draws from its own
stream, derived from a single experiment seed and a stable string name.  This
has two consequences that matter for experiments:

* runs are bit-reproducible given the seed, and
* adding a new random consumer does not perturb the draws seen by existing
  components (streams are independent, not interleaved).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _stable_hash(name: str) -> int:
    """A platform-independent 64-bit hash of ``name`` (``hash()`` is salted)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """Factory of independent :class:`numpy.random.Generator` streams.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.stream("fading/A->F")
    >>> b = streams.stream("mac/zigbee-1")
    >>> a is streams.stream("fading/A->F")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(_stable_hash(name),))
            generator = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = generator
        return generator

    def fork(self, salt: str) -> "RandomStreams":
        """Derive an independent family of streams (e.g. per repetition).

        The child seed is produced by SeedSequence mixing of (parent seed,
        hash("fork/" + salt)) rather than an affine combination: the old
        ``seed * 1000003 + hash(salt)`` scheme was invertible per-salt, so
        distinct (seed, salt) pairs could collide exactly (e.g. a fork of
        seed 0 collided with a root ``RandomStreams`` whose seed was
        ``_stable_hash(salt) % 2**63``), correlating supposedly independent
        repetitions.  The "fork/" prefix also keeps fork-derived entropy
        disjoint from the ``stream(name)`` spawn-key namespace.
        """
        seq = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(_stable_hash("fork/" + salt),)
        )
        return RandomStreams(seed=int(seq.generate_state(1, np.uint64)[0]) % (2**63))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self.seed}, streams={len(self._streams)})"

"""Discrete-event simulation engine.

The engine is a deterministic priority queue of timestamped callbacks.  Two
properties matter for reproducibility:

* **Stable ordering** — events scheduled for the same instant fire in the
  order they were scheduled (FIFO tie-break on a monotonically increasing
  sequence number), so a run is a pure function of the seed.
* **O(1) cancellation** — MAC layers constantly re-plan backoff completions
  when the medium state changes; cancelled events are flagged and skipped when
  they surface rather than being removed from the structure eagerly.  A
  threshold-triggered compaction rebuilds the queue when cancelled entries
  outnumber pending ones, so cancel-heavy workloads cannot grow the queue
  without bound.

Two scheduler backends share this contract (and are proven bitwise-identical
by ``tests/test_scheduler_equivalence.py``):

* ``"heap"`` — the binary-heap implementation in this module.  It is the
  readable oracle: every other backend must reproduce its firing order,
  ``events_processed``, and trace digests exactly.
* ``"calendar"`` — an array-based calendar queue (bucketed time wheel with an
  overflow list) in :mod:`repro.sim.calendar`, with batched per-bucket
  dispatch.  It is the throughput backend for dense scenarios.

Select a backend per instance (``Simulator(backend="calendar")``) or flip the
process-wide default with :func:`set_default_backend`, mirroring
``repro.phy.rssi.set_default_capture_mode``.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Scheduler backends selectable via ``Simulator(backend=...)``.
SCHEDULER_BACKENDS = ("heap", "calendar")

#: Compaction never triggers below this many cancelled-but-queued entries, so
#: small simulations never pay a rebuild.
COMPACT_MIN_CANCELLED = 64

_BACKEND_CLASSES: Dict[str, type] = {}

#: Backend used when ``Simulator()`` is constructed without an explicit
#: ``backend=``.  The calendar queue is the default (it is proven bitwise
#: identical to the heap oracle by ``tests/test_scheduler_equivalence.py``);
#: pass ``backend="heap"`` or call :func:`set_default_backend` to switch.
DEFAULT_BACKEND = "calendar"


def set_default_backend(backend: str) -> str:
    """Set the scheduler backend new :class:`Simulator` instances use.

    Returns the previous default so callers can restore it (mirrors
    ``set_default_capture_mode``).  Raises ``ValueError`` for unknown names.
    """
    global DEFAULT_BACKEND
    resolve_backend(backend)  # validate
    previous = DEFAULT_BACKEND
    DEFAULT_BACKEND = backend
    return previous


def resolve_backend(backend: str) -> type:
    """Map a backend name to its :class:`Simulator` subclass."""
    impl = _BACKEND_CLASSES.get(backend)
    if impl is None and backend == "calendar":
        from . import calendar as _calendar  # noqa: F401  (registers itself)

        impl = _BACKEND_CLASSES.get(backend)
    if impl is None:
        raise ValueError(
            f"unknown scheduler backend {backend!r}; expected one of "
            f"{SCHEDULER_BACKENDS}"
        )
    return impl


def register_backend(name: str, impl: type) -> None:
    _BACKEND_CLASSES[name] = impl


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and can be cancelled.  The callback is
    invoked as ``callback(*args)`` with the simulator clock already advanced
    to the event's time.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling a fired event is a no-op.

        The owning simulator is notified so its live pending counter stays
        exact and compaction can trigger; a detached event (``sim=None``)
        just flips the flag.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancel()

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and neither fired nor cancelled."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.9f} seq={self.seq} {name} {state}>"


class Simulator:
    """Deterministic discrete-event simulator (binary-heap backend).

    Typical use::

        sim = Simulator()                      # default backend
        sim = Simulator(backend="calendar")    # explicit backend
        sim.schedule(1.5, my_callback, arg1, arg2)
        sim.run(until=10.0)

    The clock (:attr:`now`) only moves inside :meth:`run` / :meth:`step`.
    This class is also the **oracle** implementation: alternative backends
    (see :data:`SCHEDULER_BACKENDS`) must match its behavior bit for bit.
    """

    #: Name this implementation registers under.
    backend_name = "heap"

    def __new__(cls, backend: Optional[str] = None, **kwargs: Any) -> "Simulator":
        # Extra kwargs (e.g. CalendarSimulator's wheel geometry) are consumed
        # by the subclass __init__; __new__ only routes on the backend name.
        if cls is Simulator:
            impl = resolve_backend(backend or DEFAULT_BACKEND)
            if impl is not cls:
                return impl.__new__(impl, backend, **kwargs)
        return super().__new__(cls)

    def __init__(self, backend: Optional[str] = None) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed: int = 0
        #: Live count of scheduled-and-not-yet-fired/cancelled events.
        self._pending = 0
        #: Cancelled events still sitting in the queue (lazy cancellation).
        self._cancelled_in_queue = 0
        #: Highest the *pending* count ever got.  Cancelled-but-unpopped
        #: entries are excluded, so this is real queue depth, not the
        #: lazy-cancellation artifact the old gauge reported.
        self.queue_hwm: int = 0
        #: Number of threshold-triggered queue compactions performed.
        self.compactions: int = 0
        #: Cumulative wall-clock seconds spent inside :meth:`run` — profiling
        #: only; the simulation itself never reads it.
        self.wall_time: float = 0.0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        # Body of :meth:`schedule_at`, inlined: this is the hottest call in
        # the engine and the delegation showed up in scenario profiles.
        event = Event(self.now + delay, next(self._seq), callback, args, self)
        heapq.heappush(self._queue, (event.time, event.seq, event))
        pending = self._pending + 1
        self._pending = pending
        if pending > self.queue_hwm:
            self.queue_hwm = pending
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        # ``args`` is already a fresh tuple from the *args packing — no copy.
        event = Event(time, next(self._seq), callback, args, self)
        heapq.heappush(self._queue, (time, event.seq, event))
        pending = self._pending + 1
        self._pending = pending
        if pending > self.queue_hwm:
            self.queue_hwm = pending
        return event

    # ------------------------------------------------------------------
    # Cancellation accounting
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` exactly once per live cancel."""
        self._pending -= 1
        cancelled = self._cancelled_in_queue + 1
        self._cancelled_in_queue = cancelled
        if cancelled > COMPACT_MIN_CANCELLED and cancelled > self._pending:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (in place, preserving order).

        Triggered when cancelled entries outnumber pending ones, which bounds
        the queue at roughly twice the pending count under cancel-heavy MAC
        backoff re-planning instead of growing without bound.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[2].cancelled]
        heapq.heapify(queue)
        self._cancelled_in_queue = 0
        self.compactions += 1

    def _prune_cancelled_head(self) -> Optional[Tuple[float, int, Event]]:
        """Pop cancelled events off the head; return the pending head entry.

        This is the single source of truth for "what fires next":
        :meth:`peek`, :meth:`run` and :meth:`step` all consult it, so they
        always agree.  Note it *mutates* the queue (cancelled heads are
        discarded), which is what makes the follow-up pop O(log n) rather
        than a rescan.
        """
        queue = self._queue
        while queue:
            head = queue[0]
            if not head[2].cancelled:
                return head
            heapq.heappop(queue)
            self._cancelled_in_queue -= 1
        return None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False when the queue is empty."""
        head = self._prune_cancelled_head()
        if head is None:
            return False
        heapq.heappop(self._queue)
        event = head[2]
        self.now = head[0]
        event.fired = True
        self._pending -= 1
        self.events_processed += 1
        event.callback(*event.args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        When ``until`` is given, the clock is left exactly at ``until`` even if
        the queue drained earlier, so utilization denominators are well
        defined.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        queue = self._queue
        pop = heapq.heappop
        wall_start = time.perf_counter()
        try:
            while not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                head = self._prune_cancelled_head()
                if head is None:
                    break
                if until is not None and head[0] > until:
                    break
                pop(queue)
                event = head[2]
                self.now = head[0]
                event.fired = True
                self._pending -= 1
                self.events_processed += 1
                fired += 1
                event.callback(*event.args)
            if until is not None and self.now < until and not self._stopped:
                self.now = until
        finally:
            self._running = False
            self.wall_time += time.perf_counter() - wall_start

    def stop(self) -> None:
        """Stop :meth:`run` after the currently executing event returns."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next *pending* event, or None if the queue is empty.

        Like :meth:`run` and :meth:`step` this goes through
        :meth:`_prune_cancelled_head`, so cancelled heads are popped (the
        queue is mutated) and all three views of "next event" agree.
        """
        head = self._prune_cancelled_head()
        return head[0] if head is not None else None

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1), live counter)."""
        return self._pending

    def queue_length(self) -> int:
        """Physical queue length, cancelled entries included.

        ``queue_length() - pending_count()`` is the lazy-cancellation debt;
        compaction keeps it bounded (see :meth:`_compact`).
        """
        return len(self._queue)


register_backend("heap", Simulator)

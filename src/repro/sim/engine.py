"""Discrete-event simulation engine.

The engine is a deterministic priority queue of timestamped callbacks.  Two
properties matter for reproducibility:

* **Stable ordering** — events scheduled for the same instant fire in the
  order they were scheduled (FIFO tie-break on a monotonically increasing
  sequence number), so a run is a pure function of the seed.
* **O(1) cancellation** — MAC layers constantly re-plan backoff completions
  when the medium state changes; cancelled events are flagged and skipped when
  they surface rather than being removed from the heap.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and can be cancelled.  The callback is
    invoked as ``callback(*args)`` with the simulator clock already advanced
    to the event's time.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling a fired event is a no-op."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and neither fired nor cancelled."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.9f} seq={self.seq} {name} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, my_callback, arg1, arg2)
        sim.run(until=10.0)

    The clock (:attr:`now`) only moves inside :meth:`run` / :meth:`step`.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed: int = 0
        #: Deepest the queue ever got (includes cancelled-but-unpopped events).
        self.queue_hwm: int = 0
        #: Cumulative wall-clock seconds spent inside :meth:`run` — profiling
        #: only; the simulation itself never reads it.
        self.wall_time: float = 0.0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        # Body of :meth:`schedule_at`, inlined: this is the hottest call in
        # the engine and the delegation showed up in scenario profiles.
        event = Event(self.now + delay, next(self._seq), callback, args)
        queue = self._queue
        heapq.heappush(queue, (event.time, event.seq, event))
        if len(queue) > self.queue_hwm:
            self.queue_hwm = len(queue)
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        # ``args`` is already a fresh tuple from the *args packing — no copy.
        event = Event(time, next(self._seq), callback, args)
        queue = self._queue
        heapq.heappush(queue, (time, event.seq, event))
        if len(queue) > self.queue_hwm:
            self.queue_hwm = len(queue)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False when the queue is empty."""
        queue = self._queue
        pop = heapq.heappop
        while queue:
            time, _seq, event = pop(queue)
            if event.cancelled:
                continue
            self.now = time
            event.fired = True
            self.events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        When ``until`` is given, the clock is left exactly at ``until`` even if
        the queue drained earlier, so utilization denominators are well
        defined.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        wall_start = time.perf_counter()
        try:
            while not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                if not self._queue:
                    break
                next_time = self._queue[0][0]
                if until is not None and next_time > until:
                    break
                if self.step():
                    fired += 1
            if until is not None and self.now < until and not self._stopped:
                self.now = until
        finally:
            self._running = False
            self.wall_time += time.perf_counter() - wall_start

    def stop(self) -> None:
        """Stop :meth:`run` after the currently executing event returns."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(n); debugging)."""
        return sum(1 for _t, _s, e in self._queue if not e.cancelled)

"""Generator-based processes on top of the event engine.

A process is a Python generator that yields delays (seconds).  After each
yield the process sleeps for that long, then resumes.  This gives traffic
generators and long-running experiment drivers a linear, readable shape
without hand-written callback chains::

    def burst_source(node):
        while True:
            node.offer_burst()
            yield rng.exponential(0.2)

    Process(sim, burst_source(node))

Yielding a negative value or a non-number is an error; returning (or raising
StopIteration) ends the process.
"""

from __future__ import annotations

from typing import Generator, Optional

from .engine import Event, Simulator


class Process:
    """Drive a generator of delays on the simulator.

    The first step runs after ``start_delay`` seconds (default: immediately,
    i.e. at the current simulation time via a zero-delay event).
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[float, None, None],
        start_delay: float = 0.0,
        name: str = "",
    ):
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.finished = False
        self._next_event: Optional[Event] = sim.schedule(start_delay, self._step)

    def _step(self) -> None:
        self._next_event = None
        try:
            delay = next(self.generator)
        except StopIteration:
            self.finished = True
            return
        if not isinstance(delay, (int, float)):
            raise TypeError(f"process {self.name!r} yielded {delay!r}, expected seconds")
        if delay < 0:
            raise ValueError(f"process {self.name!r} yielded negative delay {delay}")
        self._next_event = self.sim.schedule(float(delay), self._step)

    def stop(self) -> None:
        """Cancel the process; the generator is closed and never resumed."""
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None
        self.generator.close()
        self.finished = True

    @property
    def running(self) -> bool:
        """True while the process still has a scheduled resumption."""
        return not self.finished and self._next_event is not None

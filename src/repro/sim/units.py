"""Unit helpers shared across the simulator.

All simulation times are plain floats in **seconds**; all powers cross module
boundaries in **dBm** and are converted to milliwatts only where summation is
required (interference aggregation).  Keeping the conventions in one module
avoids the classic dB-vs-linear bookkeeping bugs.
"""

from __future__ import annotations

import math

#: One microsecond, in seconds.  MAC timings are specified in microseconds.
USEC = 1e-6
#: One millisecond, in seconds.
MSEC = 1e-3

#: Thermal noise power spectral density at 290 K, in dBm/Hz.
THERMAL_NOISE_DBM_PER_HZ = -174.0

#: Lowest representable power.  Used instead of -inf so that dBm arithmetic
#: stays finite (e.g. when a band does not overlap a receive filter at all).
MIN_POWER_DBM = -200.0


def dbm_to_mw(dbm: float) -> float:
    """Convert a power in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power in milliwatts to dBm.

    Powers at or below zero milliwatt map to :data:`MIN_POWER_DBM` rather than
    raising, because interference sums legitimately collapse to zero when no
    transmitter is active.
    """
    if mw <= 0.0:
        return MIN_POWER_DBM
    return 10.0 * math.log10(mw)


def db_to_linear(db: float) -> float:
    """Convert a dimensionless ratio in dB to linear scale."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a dimensionless linear ratio to dB (floored like dBm)."""
    if ratio <= 0.0:
        return MIN_POWER_DBM
    return 10.0 * math.log10(ratio)


def thermal_noise_dbm(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise power over ``bandwidth_hz``, plus a receiver noise figure.

    ``kTB`` at room temperature: -174 dBm/Hz + 10*log10(B).  A 2 MHz ZigBee
    receiver therefore sees roughly -111 dBm, a 20 MHz Wi-Fi receiver roughly
    -101 dBm, before the noise figure is added.
    """
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    return THERMAL_NOISE_DBM_PER_HZ + 10.0 * math.log10(bandwidth_hz) + noise_figure_db


def usec(value: float) -> float:
    """Express ``value`` microseconds in seconds."""
    return value * USEC


def msec(value: float) -> float:
    """Express ``value`` milliseconds in seconds."""
    return value * MSEC

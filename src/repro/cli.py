"""Command-line interface: run BiCord scenarios without writing code.

Examples::

    python -m repro.cli coexist --scheme bicord --location A --bursts 30
    python -m repro.cli coexist --scheme ecc --seeds 4 --jobs 4
    python -m repro.cli signaling --location C --power -1 --packets 4
    python -m repro.cli learning --packets 10 --step 30
    python -m repro.cli cti
    python -m repro.cli priority --proportion 0.3 --scheme bicord
    python -m repro.cli energy
    python -m repro.cli ble --no-afh
    python -m repro.cli sweep --experiment coexistence \
        --param scheme=bicord,ecc --param location=A,B --seeds 2 --jobs 4
    python -m repro.cli sweep --list
    python -m repro.cli list
    python -m repro.cli scenario list
    python -m repro.cli scenario describe dense-office
    python -m repro.cli scenario run dense-office --seed 0
    python -m repro.cli scenario run grid --set n_zigbee_links=9 --seeds 3

Every subcommand dispatches through the experiment registry
(:mod:`repro.experiments.registry`) and prints a small table of the metrics
the paper reports for that scenario.  ``sweep`` fans a parameter grid out
across worker processes and memoizes finished trials on disk
(``~/.cache/bicord/sweeps`` or ``$BICORD_SWEEP_CACHE``); re-running the
same sweep re-executes nothing.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from . import telemetry
from .experiments import (
    CoexistenceConfig,
    SweepEngine,
    aggregate,
    default_cache_dir,
    experiment_names,
    format_table,
    get_experiment,
    run_experiment,
)
from .experiments.sweep import TrialRecord
from .log import configure as configure_logging


def _print(title: str, rows, headers=("metric", "value")) -> None:
    print(format_table(headers, rows, title=title, float_format="{:.4f}"))


# ----------------------------------------------------------------------
# Sweep plumbing shared by the subcommands
# ----------------------------------------------------------------------
def _make_engine(args: argparse.Namespace, progress=None) -> SweepEngine:
    return SweepEngine(
        jobs=getattr(args, "jobs", 1),
        cache_dir=getattr(args, "cache_dir", None),
        cache=not getattr(args, "no_cache", False),
        progress=progress,
        telemetry=bool(getattr(args, "metrics_out", None)),
        quiet=getattr(args, "quiet", False),
        backend=getattr(args, "backend", None),
    )


def _seed_range(args: argparse.Namespace) -> range:
    return range(args.seed, args.seed + args.seeds)


def _sweep_stats_line(run) -> str:
    return (
        f"{len(run.records)} trials: {run.executed} executed, "
        f"{run.cached_hits} cached, {run.elapsed:.2f} s wall (jobs={run.jobs})"
    )


def _emit_telemetry(
    args: argparse.Namespace,
    experiment: str,
    registry: Optional[telemetry.MetricsRegistry] = None,
    snapshot: Optional[Dict[str, Any]] = None,
    config: Any = None,
    seeds: Sequence[int] = (),
    calibration: Any = None,
    faults: Any = None,
    wall_time: float = 0.0,
    headline: Optional[Dict[str, float]] = None,
    extra: Optional[Dict[str, Any]] = None,
    scenario: str = "",
    scenario_fingerprint: str = "",
) -> None:
    """Write the metrics file and print the report's telemetry section."""
    manifest = telemetry.build_manifest(
        experiment, config=config, seeds=seeds, calibration=calibration,
        faults=faults, wall_time_s=wall_time, metrics=headline, extra=extra,
        scenario=scenario, scenario_fingerprint=scenario_fingerprint,
    )
    lines = telemetry.export(
        args.metrics_out, registry=registry, manifest=manifest, snapshot=snapshot,
    )
    snap = snapshot if snapshot is not None else (
        registry.snapshot(spans=True) if registry is not None else {}
    )
    rows: List[List[Any]] = []
    for name, value in snap.get("counters", {}).items():
        rows.append([name, "counter", float(value)])
    for name, value in snap.get("gauges", {}).items():
        rows.append([name, "gauge", value])
    for name, data in snap.get("histograms", {}).items():
        rows.append([name, "histogram", float(data["count"])])
    for name, data in snap.get("spans", {}).items():
        rows.append([f"{name} (wall s)", "span", data["total_s"]])
    if rows:
        _print("telemetry", rows, headers=("metric", "kind", "value"))
    print(f"telemetry: manifest + {lines} metric line(s) -> {args.metrics_out}")


def _result_metrics(result: Any) -> Dict[str, float]:
    """Flat numeric view of any registered result (for sweep tables)."""
    metrics_fn = getattr(result, "metrics", None)
    if callable(metrics_fn):  # the ExperimentResult contract
        return dict(metrics_fn())
    if hasattr(result, "summary"):
        return dict(result.summary())
    metrics: Dict[str, float] = {}
    if hasattr(result, "pr"):  # signaling trials: surface precision/recall
        metrics["precision"] = result.pr.precision
        metrics["recall"] = result.pr.recall
    for field in dataclasses.fields(result):
        value = getattr(result, field.name)
        if isinstance(value, (bool, int, float)):
            metrics[field.name] = float(value)
    return metrics


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _parse_scalar(text: str) -> Any:
    """CLI value -> int / float / bool / str (first parse that fits)."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _parse_param(option: str) -> Dict[str, List[Any]]:
    if "=" not in option:
        raise argparse.ArgumentTypeError(
            f"--param expects KEY=VALUE[,VALUE...], got {option!r}"
        )
    key, _, values = option.partition("=")
    return {key.strip(): [_parse_scalar(v) for v in values.split(",") if v != ""]}


def _expand_range_values(values: List[Any]) -> List[Any]:
    """Expand 'A:B' items into the half-open int range A..B-1.

    Campaign grids routinely span hundreds of values per axis (e.g.
    ``placement_seed=0:100``); listing them comma-separated is hopeless.
    Non-range items pass through untouched, so ``control:0.3``-style
    strings still parse as plain values.
    """
    out: List[Any] = []
    for value in values:
        if isinstance(value, str) and value.count(":") == 1:
            lo, _, hi = value.partition(":")
            try:
                out.extend(range(int(lo), int(hi)))
                continue
            except ValueError:
                pass
        out.append(value)
    return out


def _run_seed_averaged(
    args: argparse.Namespace,
    experiment: str,
    params: Dict[str, Any],
    title: str,
) -> int:
    """Shared multi-seed path: sweep-engine run, mean table, telemetry.

    Every single-trial subcommand funnels through here when ``--seeds N``
    exceeds 1, so seed averaging, ``--jobs`` parallelism, caching, and
    ``--metrics-out`` behave identically across the whole CLI.
    """
    run = _make_engine(args).run_trials(
        experiment, [params], seeds=_seed_range(args)
    )
    per_trial = [_result_metrics(result) for result in run.results]
    headline = {
        name: _mean([m.get(name, 0.0) for m in per_trial])
        for name in per_trial[0]
    }
    _print(
        f"{title} (mean over {args.seeds} seeds)",
        [[name, value] for name, value in headline.items()],
    )
    print(_sweep_stats_line(run))
    if args.metrics_out:
        _emit_telemetry(
            args, experiment, snapshot=run.telemetry, config=params,
            seeds=_seed_range(args), wall_time=run.elapsed, headline=headline,
        )
    return 0


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _load_fault_plan(path: str):
    """Load a FaultPlan from a JSON file of field overrides."""
    from .faults import FaultPlan
    from .serialization import loads

    with open(path, "r", encoding="utf-8") as handle:
        return loads(FaultPlan, handle.read())


def _scenario_table() -> str:
    from .scenarios import get_scenario_entry, scenario_names

    rows = []
    for name in scenario_names():
        entry = get_scenario_entry(name)
        rows.append([name, entry.description, ", ".join(entry.param_names)])
    return format_table(
        ["scenario", "description", "parameters"], rows,
        title="registered scenarios",
    )


def _run_scenario(
    args: argparse.Namespace,
    name: str,
    params: Dict[str, Any],
    duration: Optional[float] = None,
    max_events: Optional[int] = None,
    fault_plan: Optional[str] = None,
) -> int:
    """Run one library scenario (single seed or seed-averaged via sweep)."""
    from .experiments import ScenarioTrialConfig

    try:
        cfg = ScenarioTrialConfig(
            scenario=name, params=params, duration=duration,
            max_events=max_events, fault_plan=fault_plan,
        )
    except (KeyError, TypeError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    if getattr(args, "seeds", 1) > 1:
        from .serialization import to_dict

        run = _make_engine(args).run_trials(
            "scenario", [to_dict(cfg)], seeds=_seed_range(args)
        )
        results = run.results
        headline = {
            key: _mean([r.summary()[key] for r in results])
            for key in results[0].summary()
        }
        _print(
            f"scenario: {cfg.scenario} (mean over {args.seeds} seeds)",
            [[key, value] for key, value in headline.items()],
        )
        print(_sweep_stats_line(run))
        if args.metrics_out:
            _emit_telemetry(
                args, "scenario", snapshot=run.telemetry, config=cfg,
                seeds=_seed_range(args), wall_time=run.elapsed, headline=headline,
                scenario=cfg.scenario, scenario_fingerprint=cfg.spec_fingerprint,
            )
        return 0
    registry = telemetry.MetricsRegistry() if args.metrics_out else None
    wall_start = time.perf_counter()
    result = run_experiment("scenario", config=cfg, seed=args.seed, telemetry=registry)
    wall_time = time.perf_counter() - wall_start
    _print(
        f"scenario: {result.scenario} ({result.scheme}, seed {args.seed})",
        [[key, value] for key, value in result.summary().items()],
    )
    link_rows = [
        [link.name, float(link.offered), float(link.delivered),
         link.delivery_ratio, link.mean_delay * 1e3, float(link.control_packets)]
        for link in result.links.values()
    ]
    if link_rows:
        _print(
            "zigbee links", link_rows,
            headers=("link", "offered", "delivered", "ratio",
                     "mean delay (ms)", "ctrl pkts"),
        )
    wifi_rows = [
        [link.name, float(link.sent), float(link.delivered), link.prr]
        for link in result.wifi.values()
    ]
    if wifi_rows:
        _print("wifi links", wifi_rows, headers=("link", "sent", "delivered", "prr"))
    if "roam_handoffs" in result.extra:
        _print(
            "roaming",
            [[result.extra.get("roam_handoffs", 0.0),
              result.extra.get("roam_pingpongs", 0.0),
              result.extra.get("roam_scans", 0.0),
              result.extra.get("roam_gap_ms", 0.0)]],
            headers=("handoffs", "pingpongs", "scans", "gap (ms)"),
        )
    print(f"spec fingerprint: {result.spec_fingerprint}")
    if registry is not None:
        _emit_telemetry(
            args, "scenario", registry=registry, config=cfg,
            seeds=(args.seed,), wall_time=wall_time, headline=result.summary(),
            scenario=result.scenario, scenario_fingerprint=result.spec_fingerprint,
        )
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    if args.action == "list":
        print(_scenario_table())
        return 0
    if not args.name:
        print("error: scenario name required for 'describe' and 'run'",
              file=sys.stderr)
        return 2
    params: Dict[str, Any] = {}
    for option in args.set or []:
        if "=" not in option:
            print(f"error: --set expects KEY=VALUE, got {option!r}", file=sys.stderr)
            return 2
        key, _, value = option.partition("=")
        params[key.strip()] = _parse_scalar(value)
    if args.action == "describe":
        from .experiments import ScenarioTrialConfig
        from .serialization import dumps

        try:
            cfg = ScenarioTrialConfig(
                scenario=args.name, params=params,
                duration=args.duration, fault_plan=args.fault_plan,
            )
        except (KeyError, TypeError, ValueError) as exc:
            message = exc.args[0] if exc.args else exc
            print(f"error: {message}", file=sys.stderr)
            return 2
        spec = cfg.resolve_spec()
        print(dumps(spec))
        print(f"fingerprint: {spec.fingerprint()}")
        return 0
    return _run_scenario(
        args, args.name, params, duration=args.duration,
        max_events=args.max_events, fault_plan=args.fault_plan,
    )


def cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in experiment_names():
        spec = get_experiment(name)
        rows.append([name, spec.description, ", ".join(spec.param_names())])
    print(format_table(
        ["experiment", "description", "parameters"], rows,
        title="registered experiments",
    ))
    print()
    print(_scenario_table())
    return 0


def cmd_coexist(args: argparse.Namespace) -> int:
    if args.scenario:
        from .scenarios import get_scenario_entry

        try:
            entry = get_scenario_entry(args.scenario)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        if args.faults:
            print("error: --faults (a FaultPlan file) does not combine with "
                  "--scenario; use `repro scenario run --fault-plan NAME`",
                  file=sys.stderr)
            return 2
        # Forward only the coexist knobs the scenario factory understands.
        params = {
            key: value
            for key, value in (
                ("scheme", args.scheme),
                ("location", args.location),
                ("mobility", args.mobility),
            )
            if key in entry.param_names
        }
        return _run_scenario(args, entry.name, params)
    if args.config:
        from .serialization import loads

        with open(args.config, "r", encoding="utf-8") as handle:
            config = loads(CoexistenceConfig, handle.read())
        if args.faults:
            config = dataclasses.replace(config, faults=_load_fault_plan(args.faults))
    else:
        config = CoexistenceConfig(
            scheme=args.scheme,
            location=args.location,
            seed=args.seed,
            burst_packets=args.packets,
            payload_bytes=args.payload,
            burst_interval=args.interval,
            poisson=not args.periodic,
            n_bursts=args.bursts,
            ecc_whitespace=args.ecc_whitespace * 1e-3,
            mobility=args.mobility,
            faults=_load_fault_plan(args.faults) if args.faults else None,
        )
    if args.dump_config:
        from .serialization import dumps

        print(dumps(config))
        return 0
    if args.seeds > 1:
        from .serialization import to_dict

        params = to_dict(config)
        params.pop("seed")
        calibration = config.calibration
        params.pop("calibration")
        run = _make_engine(args).run_trials(
            "coexistence", [params], seeds=_seed_range(args), calibration=calibration,
        )
        agg = aggregate(run.results)
        _print(
            f"coexistence: {config.scheme} at location {config.location} "
            f"(mean over {args.seeds} seeds)",
            [[key, value] for key, value in agg.items()],
        )
        print(_sweep_stats_line(run))
        if args.metrics_out:
            _emit_telemetry(
                args, "coexistence", snapshot=run.telemetry, config=config,
                seeds=_seed_range(args), calibration=calibration,
                faults=config.faults, wall_time=run.elapsed, headline=agg,
            )
        return 0
    registry = telemetry.MetricsRegistry() if args.metrics_out else None
    wall_start = time.perf_counter()
    result = run_experiment("coexistence", config=config, telemetry=registry)
    wall_time = time.perf_counter() - wall_start
    _print(
        f"coexistence: {config.scheme} at location {config.location}",
        [
            ["channel utilization", result.channel_utilization],
            ["zigbee utilization", result.zigbee_utilization],
            ["wifi utilization", result.wifi_utilization],
            ["mean zigbee delay (ms)", result.mean_delay * 1e3],
            ["p95 zigbee delay (ms)", result.p95_delay * 1e3],
            ["zigbee throughput (kbps)", result.zigbee_throughput_bps / 1e3],
            ["delivery ratio", result.delivery_ratio],
            ["control packets", float(result.control_packets)],
            ["white spaces issued", float(result.whitespaces_issued)],
        ],
    )
    injected = {k: v for k, v in result.extra.items() if k.startswith("fault_")}
    if injected:
        print("injected faults: " + ", ".join(
            f"{name[len('fault_'):]}={int(count)}" for name, count in sorted(injected.items())
        ))
    if registry is not None:
        _emit_telemetry(
            args, "coexistence", registry=registry, config=config,
            seeds=(config.seed,), calibration=config.calibration,
            faults=config.faults, wall_time=wall_time,
            headline=result.summary(),
        )
    return 0


def cmd_signaling(args: argparse.Namespace) -> int:
    params = dict(
        location=args.location,
        power_dbm=args.power,
        n_control_packets=args.packets,
        n_salvos=args.salvos,
    )
    if args.seeds > 1:
        run = _make_engine(args).run_trials(
            "signaling", [params], seeds=_seed_range(args)
        )
        trials = run.results
        headline = {
            "precision": _mean([t.pr.precision for t in trials]),
            "recall": _mean([t.pr.recall for t in trials]),
            "false_positives": _mean([float(t.pr.false_positives) for t in trials]),
            "wifi_prr": _mean([t.wifi_prr for t in trials]),
        }
        _print(
            f"signaling: location {args.location}, {args.power:+.0f} dBm, "
            f"{args.packets} control packets (mean over {args.seeds} seeds)",
            [
                ["precision", headline["precision"]],
                ["recall", headline["recall"]],
                ["false positives", headline["false_positives"]],
                ["wifi PRR during trial", headline["wifi_prr"]],
            ],
        )
        print(_sweep_stats_line(run))
        if args.metrics_out:
            _emit_telemetry(
                args, "signaling", snapshot=run.telemetry, config=params,
                seeds=_seed_range(args), wall_time=run.elapsed, headline=headline,
            )
        return 0
    registry = telemetry.MetricsRegistry() if args.metrics_out else None
    wall_start = time.perf_counter()
    result = run_experiment("signaling", seed=args.seed, telemetry=registry, **params)
    wall_time = time.perf_counter() - wall_start
    _print(
        f"signaling: location {args.location}, {args.power:+.0f} dBm, "
        f"{args.packets} control packets",
        [
            ["precision", result.pr.precision],
            ["recall", result.pr.recall],
            ["true positives", float(result.pr.true_positives)],
            ["false positives", float(result.pr.false_positives)],
            ["wifi PRR during trial", result.wifi_prr],
        ],
    )
    if registry is not None:
        _emit_telemetry(
            args, "signaling", registry=registry, config=params,
            seeds=(args.seed,), wall_time=wall_time,
            headline={
                "precision": result.pr.precision,
                "recall": result.pr.recall,
                "false_positives": float(result.pr.false_positives),
                "wifi_prr": result.wifi_prr,
            },
        )
    return 0


def cmd_learning(args: argparse.Namespace) -> int:
    params = dict(
        n_packets=args.packets,
        step=args.step * 1e-3,
        location=args.location,
        n_bursts=args.bursts,
    )
    if args.seeds > 1:
        return _run_seed_averaged(
            args, "learning", params,
            f"white-space learning: {args.packets}-packet bursts, "
            f"{args.step:.0f} ms step",
        )
    registry = telemetry.MetricsRegistry() if args.metrics_out else None
    wall_start = time.perf_counter()
    result = run_experiment("learning", seed=args.seed, telemetry=registry, **params)
    wall_time = time.perf_counter() - wall_start
    _print(
        f"white-space learning: {args.packets}-packet bursts, {args.step:.0f} ms step",
        [
            ["converged", float(result.converged)],
            ["iterations", float(result.iterations)],
            ["final white space (ms)", result.final_whitespace * 1e3],
            ["burst airtime (ms)", result.burst_airtime * 1e3],
        ],
    )
    trajectory = ", ".join(f"{g * 1e3:.0f}" for g in result.trajectory[:20])
    print(f"trajectory (ms): {trajectory}")
    if registry is not None:
        _emit_telemetry(
            args, "learning", registry=registry, config=params,
            seeds=(args.seed,), wall_time=wall_time,
            headline=_result_metrics(result),
        )
    return 0


def cmd_cti(args: argparse.Namespace) -> int:
    if args.seeds > 1:
        engine = _make_engine(args)
        seeds = _seed_range(args)
        cti_run = engine.run_trials("cti", [{"n_traces": args.traces}], seeds=seeds)
        dev_run = engine.run_trials(
            "device-id", [{"n_traces": args.traces}], seeds=seeds
        )
        _print(
            f"CTI detection (mean over {args.seeds} seeds)",
            [
                ["wifi detection accuracy (paper 0.9639)",
                 _mean([r.wifi_detection_accuracy for r in cti_run.results])],
                ["multiclass accuracy",
                 _mean([r.multiclass_accuracy for r in cti_run.results])],
                ["device identification (paper 0.8976)",
                 _mean([r.accuracy for r in dev_run.results])],
            ],
        )
        print(_sweep_stats_line(cti_run))
        print(_sweep_stats_line(dev_run))
        return 0
    cti = run_experiment("cti", seed=args.seed, n_traces=args.traces)
    device = run_experiment("device-id", seed=args.seed, n_traces=args.traces)
    _print(
        "CTI detection",
        [
            ["wifi detection accuracy (paper 0.9639)", cti.wifi_detection_accuracy],
            ["multiclass accuracy", cti.multiclass_accuracy],
            ["device identification (paper 0.8976)", device.accuracy],
        ],
    )
    return 0


def cmd_priority(args: argparse.Namespace) -> int:
    if args.seeds > 1:
        return _run_seed_averaged(
            args, "priority",
            {"scheme": args.scheme, "high_proportion": args.proportion,
             "total_duration": args.duration},
            f"priority traffic: {args.scheme}, "
            f"high-priority share {args.proportion}",
        )
    result = run_experiment(
        "priority",
        seed=args.seed,
        scheme=args.scheme,
        high_proportion=args.proportion,
        total_duration=args.duration,
    )
    _print(
        f"priority traffic: {args.scheme}, high-priority share {args.proportion}",
        [
            ["channel utilization", result.utilization],
            ["zigbee utilization", result.zigbee_utilization],
            ["low-priority wifi delay (ms)", result.low_priority_wifi_delay * 1e3],
            ["high-priority wifi delay (ms)", result.high_priority_wifi_delay * 1e3],
            ["zigbee mean delay (ms)", result.zigbee_mean_delay * 1e3],
        ],
    )
    return 0


def cmd_energy(args: argparse.Namespace) -> int:
    if args.seeds > 1:
        return _run_seed_averaged(
            args, "energy", {"n_bursts": args.bursts},
            "energy overhead (paper: 10-21%)",
        )
    result = run_experiment("energy", seed=args.seed, n_bursts=args.bursts)
    _print(
        "energy overhead (paper: 10-21%)",
        [
            ["bicord under wifi (mJ)", result.bicord_mj],
            ["clear channel (mJ)", result.clear_channel_mj],
            ["overhead (%)", result.overhead_fraction * 100.0],
            ["control packets", float(result.control_packets)],
        ],
    )
    return 0


def cmd_ble(args: argparse.Namespace) -> int:
    if args.seeds > 1:
        return _run_seed_averaged(
            args, "ble",
            {"afh_enabled": args.afh, "duration": args.duration},
            f"ZigBee/BLE coexistence (AFH {'on' if args.afh else 'off'})",
        )
    result = run_experiment(
        "ble", seed=args.seed, afh_enabled=args.afh, duration=args.duration
    )
    _print(
        f"ZigBee/BLE coexistence (AFH {'on' if args.afh else 'off'})",
        [
            ["ble event success rate", result.ble_success_rate],
            ["ble late-window success", result.ble_late_success_rate],
            ["excluded channels", float(len(result.excluded_channels))],
            ["zigbee delivery ratio", result.zigbee_delivery_ratio],
            ["zigbee mean delay (ms)", result.zigbee_mean_delay * 1e3],
        ],
    )
    return 0


def cmd_robustness(args: argparse.Namespace) -> int:
    from .experiments import robustness_curve

    rates = [float(r) for r in args.rates.split(",") if r != ""]
    for rate in rates:
        if not 0.0 <= rate <= 1.0:
            print(f"error: rates must be in [0, 1], got {rate}", file=sys.stderr)
            return 2
    base = {
        "scheme": args.scheme,
        "location": args.location,
        "n_bursts": args.bursts,
    }
    if args.scenario:
        base["scenario"] = args.scenario
    points, run = robustness_curve(
        dimension=args.dimension,
        rates=rates,
        seeds=tuple(_seed_range(args)),
        base=base,
        engine=_make_engine(args),
        return_run=True,
    )
    rows = [
        [
            point["rate"], point["prr_mean"], point["prr_min"],
            point["mean_delay"] * 1e3, point["p95_delay"] * 1e3,
            point["throughput_bps"] / 1e3,
        ]
        for point in points
    ]
    workload = args.scenario if args.scenario else args.scheme
    _print(
        f"robustness: {workload} vs {args.dimension} faults "
        f"({args.seeds} seed(s) per rate)",
        rows,
        headers=("rate", "prr mean", "prr min", "mean delay (ms)",
                 "p95 delay (ms)", "throughput (kbps)"),
    )
    print(_sweep_stats_line(run))
    if args.metrics_out:
        _emit_telemetry(
            args, "robustness", snapshot=run.telemetry,
            config={"dimension": args.dimension, "rates": rates, **base},
            seeds=_seed_range(args), wall_time=run.elapsed,
            headline={f"prr@{p['rate']:g}": p["prr_mean"] for p in points},
            extra={"dimension": args.dimension, "rates": rates},
        )
    return 0


def cmd_roaming(args: argparse.Namespace) -> int:
    from .experiments import roaming_curve

    speeds = [float(s) for s in args.speeds.split(",") if s != ""]
    n_aps = [int(n) for n in args.aps.split(",") if n != ""]
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    if not speeds or not n_aps or not schemes:
        print("error: --speeds, --aps and --schemes must be non-empty",
              file=sys.stderr)
        return 2
    base: Dict[str, Any] = {"scenario": args.scenario, "policy": args.policy}
    if args.duration is not None:
        base["duration"] = args.duration
    points, run = roaming_curve(
        speeds=speeds,
        n_aps=n_aps,
        schemes=schemes,
        seeds=tuple(_seed_range(args)),
        base=base,
        engine=_make_engine(args),
        return_run=True,
    )
    rows = [
        [
            point["speed_mps"], float(point["n_aps"]), point["scheme"],
            point["handoffs_mean"], point["pingpongs_mean"],
            point["gap_ms_mean"], point["wifi_prr_mean"], point["prr_mean"],
            point["mean_delay"] * 1e3,
        ]
        for point in points
    ]
    _print(
        f"roaming: {args.scenario} under {args.policy!r} "
        f"({args.seeds} seed(s) per point)",
        rows,
        headers=("speed (m/s)", "APs", "scheme", "handoffs", "pingpongs",
                 "gap (ms)", "wifi prr", "zigbee prr", "mean delay (ms)"),
    )
    print(_sweep_stats_line(run))
    if args.metrics_out:
        _emit_telemetry(
            args, "roaming", snapshot=run.telemetry,
            config={"speeds": speeds, "n_aps": n_aps, "schemes": schemes, **base},
            seeds=_seed_range(args), wall_time=run.elapsed,
            headline={
                f"handoffs@{p['speed_mps']:g}x{p['n_aps']}/{p['scheme']}":
                    p["handoffs_mean"]
                for p in points
            },
            extra={"scenario": args.scenario, "policy": args.policy},
        )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.list:
        rows = []
        for name in experiment_names():
            spec = get_experiment(name)
            rows.append([name, spec.description,
                         ", ".join(spec.param_names())])
        print(format_table(["experiment", "description", "parameters"], rows,
                           title="registered experiments"))
        return 0
    if args.clear_cache:
        engine = _make_engine(args)
        removed = engine.clear_cache()
        print(f"cleared {removed} cache entries from {engine.cache_dir}")
        if not args.experiment:
            return 0
    if not args.experiment:
        print("error: --experiment is required (or use --list / --clear-cache)",
              file=sys.stderr)
        return 2
    try:
        spec = get_experiment(args.experiment)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    grid: Dict[str, List[Any]] = {}
    try:
        for option in args.param or []:
            grid.update(_parse_param(option))
    except argparse.ArgumentTypeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    unknown = sorted(set(grid) - set(spec.param_names()))
    if unknown:
        print(
            f"error: unknown parameter(s) {unknown} for experiment "
            f"{spec.name!r}; valid: {sorted(spec.param_names())}",
            file=sys.stderr,
        )
        return 2

    def progress(record: TrialRecord, done: int, total: int) -> None:
        if args.quiet:
            return
        state = "cached " if record.cached else f"{record.elapsed:6.2f}s"
        params = " ".join(
            f"{k}={v}" for k, v in record.params.items() if k in grid
        )
        print(f"  [{done}/{total}] {state}  seed={record.seed} {params}".rstrip())

    from .experiments import SweepSpec

    try:
        engine = _make_engine(args, progress=progress)
        run = engine.run(SweepSpec(
            experiment=spec.name,
            grid=grid,
            seeds=tuple(_seed_range(args)),
        ))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # One row per grid combination, metrics averaged over seeds.
    varying = [name for name in grid if len(grid[name]) > 1]
    combos: Dict[tuple, List[TrialRecord]] = {}
    for record in run.records:
        key = tuple(record.params[name] for name in varying)
        combos.setdefault(key, []).append(record)
    metric_names: List[str] = []
    for records in combos.values():
        for name in _result_metrics(records[0].result):
            if name not in metric_names and name not in varying:
                metric_names.append(name)
    rows = []
    for key, records in combos.items():
        per_trial = [_result_metrics(r.result) for r in records]
        rows.append(list(key) + [
            _mean([m.get(name, 0.0) for m in per_trial]) for name in metric_names
        ])
    headers = varying + metric_names
    print(format_table(
        headers, rows,
        title=f"sweep: {spec.name} ({args.seeds} seed(s) per combination)",
        float_format="{:.4f}",
    ))
    print(_sweep_stats_line(run))
    if engine.cache_enabled:
        print(f"cache: {engine.cache_dir}")
    if args.metrics_out:
        _emit_telemetry(
            args, spec.name, snapshot=run.telemetry,
            config={"grid": grid, "base": {}},
            seeds=_seed_range(args), wall_time=run.elapsed,
        )
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from .experiments.campaign import (
        CampaignError,
        CampaignRunner,
        CampaignSpec,
        comparison_table,
    )

    runner = CampaignRunner(
        args.dir,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        cache=not args.no_cache,
        quiet=args.quiet,
        backend=args.backend,
    )

    if args.action == "status":
        try:
            status = runner.status()
            still_cached, journaled = runner.verify_cache()
        except CampaignError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        rows = [
            ["trials", float(status.total)],
            ["done", float(status.done)],
            ["remaining", float(status.remaining)],
            ["cache hits (journaled)", float(status.cached_hits)],
            ["still cached", float(still_cached)],
            ["shards", float(status.shards)],
        ]
        _print(f"campaign: {status.name} [{status.fingerprint[:12]}]", rows)
        shard_rows = [
            [f"shard {shard}", float(done)]
            for shard, done in sorted(status.per_shard.items())
        ]
        _print("per-shard progress", shard_rows, headers=("shard", "done"))
        if journaled and still_cached < journaled:
            print(
                f"warning: {journaled - still_cached} journaled trial(s) no "
                "longer cached; a resume would recompute them"
            )
        return 0

    if args.action == "report":
        try:
            summaries = runner.report(batch=args.batch)
        except CampaignError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        spec = runner.load_spec()
        kind = "batch means" if args.batch else "per-trial"
        print(f"campaign report: {spec.name} "
              f"(by {spec.compare_by}, {kind}, mean +- 95% CI)")
        print(comparison_table(summaries))
        return 0

    # gen: build the spec from a scenario generator, then run it
    if args.action == "gen":
        from .experiments.campaign import campaign_from_generator

        if not args.generator:
            print("error: campaign gen requires --generator NAME",
                  file=sys.stderr)
            return 2
        fixed: Dict[str, Any] = {}
        for option in args.gen_param or []:
            if "=" not in option:
                print(f"error: --gen-param expects KEY=VALUE, got {option!r}",
                      file=sys.stderr)
                return 2
            key, _, value = option.partition("=")
            fixed[key.strip()] = _parse_scalar(value)
        base: Dict[str, Any] = {}
        for option in args.base or []:
            if "=" not in option:
                print(f"error: --base expects KEY=VALUE, got {option!r}",
                      file=sys.stderr)
                return 2
            key, _, value = option.partition("=")
            base[key.strip()] = _parse_scalar(value)
        try:
            spec = campaign_from_generator(
                name=args.name,
                generator=args.generator,
                count=args.count,
                axis=args.axis,
                start=args.start,
                params=fixed,
                base=base,
                seeds=tuple(_seed_range(args)),
                shards=args.shards,
                compare_by=args.compare_by,
            )
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else exc
            print(f"error: {message}", file=sys.stderr)
            return 2
        return _run_campaign(args, runner, spec)

    # run / resume
    spec = None
    if args.action == "run":
        grid: Dict[str, List[Any]] = {}
        scenario_grid: Dict[str, List[Any]] = {}
        base: Dict[str, Any] = {}
        try:
            for option in args.param or []:
                for key, values in _parse_param(option).items():
                    grid[key] = _expand_range_values(values)
            for option in args.scenario_param or []:
                for key, values in _parse_param(option).items():
                    scenario_grid[key] = _expand_range_values(values)
        except argparse.ArgumentTypeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for option in args.base or []:
            if "=" not in option:
                print(f"error: --base expects KEY=VALUE, got {option!r}",
                      file=sys.stderr)
                return 2
            key, _, value = option.partition("=")
            base[key.strip()] = _parse_scalar(value)
        try:
            spec = CampaignSpec(
                name=args.name,
                experiment=args.experiment,
                grid=grid,
                base=base,
                scenario_grid=scenario_grid,
                seeds=tuple(_seed_range(args)),
                shards=args.shards,
                compare_by=args.compare_by,
            )
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else exc
            print(f"error: {message}", file=sys.stderr)
            return 2

    return _run_campaign(args, runner, spec)


def _run_campaign(args: argparse.Namespace, runner, spec) -> int:
    """Execute (or resume) a campaign spec and print the outcome."""
    from .experiments.campaign import CampaignError, comparison_table

    def progress(trial, record, n_done, n_total):
        if args.quiet:
            return
        state = "cached " if record.cached else f"{record.elapsed:6.2f}s"
        print(f"  [{n_done}/{n_total}] {state}  shard={trial.shard} "
              f"seed={trial.seed} #{trial.index}")

    try:
        run = runner.run(spec, max_trials=args.max_trials, progress=progress)
    except KeyboardInterrupt:
        print(f"\ninterrupted — resume with: repro campaign resume "
              f"--dir {args.dir}", file=sys.stderr)
        return 3
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(
        f"campaign {run.spec.name}: {run.completed}/{run.total} trials done "
        f"({run.executed} executed, {run.cached_hits} cached this run, "
        f"{run.elapsed:.2f} s wall, jobs={args.jobs})"
    )
    if run.complete:
        print(f"manifest: {runner.manifest_path}")
        print(f"campaign report (by {run.spec.compare_by}, mean +- 95% CI)")
        print(comparison_table(run.summaries or {}))
    else:
        print(f"resume with: repro campaign resume --dir {args.dir}")
    if args.metrics_out and run.telemetry is not None:
        _emit_telemetry(
            args, run.spec.experiment, snapshot=run.telemetry,
            seeds=tuple(run.spec.seeds), wall_time=run.elapsed,
            extra={"campaign": run.spec.name},
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the coordination job server until SIGTERM drains it.

    All runtime output goes through ``repro.log`` (the ``repro.server``
    loggers), so ``--quiet``/-v behave exactly like every other
    subcommand — the only bare print is the one-line startup banner
    below, which doubles as the parseable "where do I connect" answer.
    """
    import asyncio

    from .server import JobServer, ServerConfig

    config = ServerConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        cache_dir=args.cache_dir,
        backend=args.backend,
        snapshot_interval=args.snapshot_interval,
        drain_grace=args.drain_grace,
    )
    server = JobServer(config)

    async def run() -> None:
        await server.start()
        if not args.quiet:
            print(
                f"repro server: {config.host}:{server.port} "
                f"(state {config.state_dir}, workers {config.workers}, "
                f"queue depth {config.queue_depth})",
                flush=True,
            )
        try:
            await server._shutdown.wait()
        finally:
            await server._drain()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass  # SIGINT on platforms without loop signal handlers
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _positive_int(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="BiCord reproduction scenarios"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared flag groups, declared ONCE as argparse parent parsers so every
    # subcommand exposes them with byte-identical names, defaults, and help.
    seed_flags = argparse.ArgumentParser(add_help=False)
    seed_flags.add_argument("--seed", type=int, default=0,
                            help="base random seed")
    seed_flags.add_argument("--seeds", type=_positive_int, default=1,
                            metavar="N",
                            help="run N seeds (seed..seed+N-1) and report means")

    exec_flags = argparse.ArgumentParser(add_help=False)
    exec_flags.add_argument("--jobs", type=_positive_int, default=1,
                            help="worker processes (1 = serial)")
    exec_flags.add_argument("--cache-dir", default=None,
                            help="sweep cache directory (default: "
                                 "$BICORD_SWEEP_CACHE or ~/.cache/bicord/sweeps)")
    exec_flags.add_argument("--no-cache", action="store_true",
                            help="disable the on-disk trial cache")
    exec_flags.add_argument("--quiet", action="store_true",
                            help="suppress progress output")
    exec_flags.add_argument("--backend", choices=("heap", "calendar"),
                            default=None,
                            help="scheduler backend for every trial, "
                                 "including pooled workers (default: the "
                                 "process default; recorded in the manifest)")

    telemetry_flags = argparse.ArgumentParser(add_help=False)
    telemetry_flags.add_argument("--metrics-out", metavar="PATH", default=None,
                                 help="collect telemetry and write manifest + "
                                      "metrics to PATH (.jsonl or .csv)")
    telemetry_flags.add_argument("-v", "--verbose", action="count", default=0,
                                 help="more logging (repeatable)")

    shared = [seed_flags, exec_flags, telemetry_flags]

    location_flags = argparse.ArgumentParser(add_help=False)
    location_flags.add_argument("--location", choices="ABCD", default="A")

    p = sub.add_parser("coexist", parents=shared + [location_flags],
                       help="one coexistence run (Fig. 10/11 style)")
    p.add_argument("--scheme",
                   choices=("bicord", "ecc", "csma", "predictive", "slow-ctc"),
                   default="bicord")
    p.add_argument("--bursts", type=int, default=30)
    p.add_argument("--packets", type=int, default=5)
    p.add_argument("--payload", type=int, default=50)
    p.add_argument("--interval", type=float, default=0.2,
                   help="mean burst interval in seconds")
    p.add_argument("--periodic", action="store_true",
                   help="fixed intervals instead of Poisson")
    p.add_argument("--ecc-whitespace", type=float, default=20.0,
                   help="ECC white space in ms")
    p.add_argument("--mobility", choices=("none", "person", "device"),
                   default="none")
    p.add_argument("--config", metavar="FILE",
                   help="load the full CoexistenceConfig from a JSON file "
                        "(overrides the other options)")
    p.add_argument("--faults", metavar="FILE",
                   help="JSON file of FaultPlan fields to inject "
                        "(e.g. {\"detection_fn_rate\": 0.2})")
    p.add_argument("--dump-config", action="store_true",
                   help="print the effective config as JSON and exit")
    p.add_argument("--scenario", default=None, metavar="NAME",
                   help="run a library scenario instead of the standard "
                        "office workload (forwards scheme/location/mobility "
                        "when the scenario accepts them)")
    p.set_defaults(func=cmd_coexist)

    p = sub.add_parser("signaling", parents=shared + [location_flags],
                       help="precision/recall trial (Tables I-II)")
    p.add_argument("--power", type=float, default=0.0)
    p.add_argument("--packets", type=int, default=4)
    p.add_argument("--salvos", type=int, default=100)
    p.set_defaults(func=cmd_signaling)

    p = sub.add_parser("learning", parents=shared + [location_flags],
                       help="white-space learning (Figs. 7-9)")
    p.add_argument("--packets", type=int, default=10)
    p.add_argument("--step", type=float, default=30.0, help="initial step in ms")
    p.add_argument("--bursts", type=int, default=14)
    p.set_defaults(func=cmd_learning)

    p = sub.add_parser("cti", parents=shared,
                       help="CTI detection accuracy (Sec. VII-A)")
    p.add_argument("--traces", type=int, default=60)
    p.set_defaults(func=cmd_cti)

    p = sub.add_parser("priority", parents=shared,
                       help="prioritized Wi-Fi traffic (Fig. 13)")
    p.add_argument("--scheme", choices=("bicord", "ecc"), default="bicord")
    p.add_argument("--proportion", type=float, default=0.3)
    p.add_argument("--duration", type=float, default=6.0)
    p.set_defaults(func=cmd_priority)

    p = sub.add_parser("energy", parents=shared,
                       help="energy overhead (Sec. VII-B)")
    p.add_argument("--bursts", type=int, default=8)
    p.set_defaults(func=cmd_energy)

    p = sub.add_parser("ble", parents=shared,
                       help="ZigBee/BLE extension (Sec. VII-D)")
    p.add_argument("--duration", type=float, default=10.0)
    p.add_argument("--afh", dest="afh", action="store_true", default=True)
    p.add_argument("--no-afh", dest="afh", action="store_false")
    p.set_defaults(func=cmd_ble)

    p = sub.add_parser(
        "robustness",
        parents=shared + [location_flags],
        help="PRR/latency degradation under injected coordination faults",
        description="Sweep one fault dimension over a grid of rates and "
                    "report the degradation curve (rate 0 = fault-free "
                    "control point).",
    )
    p.add_argument("--dimension",
                   choices=("detection", "control", "cts", "timers", "all"),
                   default="all")
    p.add_argument("--rates", default="0,0.1,0.25,0.5",
                   help="comma-separated fault rates in [0, 1]")
    p.add_argument("--scheme",
                   choices=("bicord", "ecc", "csma", "predictive", "slow-ctc"),
                   default="bicord")
    p.add_argument("--bursts", type=int, default=20)
    p.add_argument("--scenario", default=None, metavar="NAME",
                   help="fault-inject a library scenario instead of the "
                        "standard coexistence workload")
    p.set_defaults(func=cmd_robustness)

    p = sub.add_parser(
        "roaming",
        parents=shared,
        help="multi-AP handoff churn vs coexistence quality",
        description="Sweep client speed x AP density x scheme over a "
                    "roaming scenario and report handoff counts, ping-pongs, "
                    "connectivity gap, and the coexistence metrics.",
    )
    p.add_argument("--scenario",
                   choices=("vehicular-corridor", "campus-roaming"),
                   default="vehicular-corridor")
    p.add_argument("--speeds", default="1.5,5,15",
                   help="comma-separated client speeds in m/s")
    p.add_argument("--aps", default="2,4",
                   help="comma-separated AP counts (>= 2)")
    p.add_argument("--schemes", default="bicord,csma",
                   help="comma-separated coordination schemes")
    p.add_argument("--policy", default="strongest-rssi",
                   help="AP-selection policy (strongest-rssi, sticky)")
    p.add_argument("--duration", type=float, default=None,
                   help="override the scenario duration in seconds")
    p.set_defaults(func=cmd_roaming)

    p = sub.add_parser(
        "sweep",
        parents=shared,
        help="parallel parameter sweep over any registered experiment",
        description="Fan a parameter grid out across worker processes; "
                    "finished trials are cached on disk and never re-run.",
    )
    p.add_argument("--experiment", default=None,
                   help=f"one of: {', '.join(experiment_names())}")
    p.add_argument("--param", action="append", metavar="KEY=V1[,V2...]",
                   help="grid axis (repeatable); single values pin a parameter")
    p.add_argument("--clear-cache", action="store_true",
                   help="delete all cached trial results first")
    p.add_argument("--list", action="store_true",
                   help="list registered experiments and their parameters")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "campaign",
        parents=shared,
        help="sharded, journaled, resumable experiment campaign",
        description="Expand a campaign grid into trials, fan them across "
                    "a work-stealing pool, and journal each completion. A "
                    "killed campaign resumes with zero recomputation "
                    "(results are served from the trial cache); `report` "
                    "prints per-scheme means with 95% confidence intervals.",
    )
    p.add_argument("action", choices=("run", "resume", "status", "report",
                                      "gen"))
    p.add_argument("--dir", default="campaign",
                   help="campaign directory (spec + journal + manifest)")
    p.add_argument("--name", default="campaign",
                   help="campaign name (recorded in spec + manifest)")
    p.add_argument("--experiment", default="scenario",
                   help=f"one of: {', '.join(experiment_names())}")
    p.add_argument("--param", action="append", metavar="KEY=V1[,V2...]",
                   help="experiment grid axis (repeatable); integer ranges "
                        "expand as A:B (half-open)")
    p.add_argument("--scenario-param", action="append",
                   metavar="KEY=V1[,V2...]",
                   help="scenario factory grid axis (scenario experiment "
                        "only); A:B expands to an integer range — e.g. "
                        "placement_seed=0:100")
    p.add_argument("--base", action="append", metavar="KEY=VALUE",
                   help="fixed experiment parameter (repeatable)")
    p.add_argument("--shards", type=_positive_int, default=1,
                   help="logical shard count (telemetry/manifest grouping)")
    p.add_argument("--compare-by", default="scheme",
                   help="parameter the report groups by (default: scheme)")
    p.add_argument("--max-trials", type=_positive_int, default=None,
                   help="cap the trials executed this invocation "
                        "(campaign stays resumable)")
    p.add_argument("--batch", action="store_true",
                   help="report batch-means CIs (average seeds per "
                        "combination first)")
    p.add_argument("--generator", default=None, metavar="NAME",
                   help="(gen) scenario generator to sweep placements of "
                        "— e.g. random_uniform, clustered")
    p.add_argument("--count", type=_positive_int, default=10,
                   help="(gen) number of generated placements")
    p.add_argument("--axis", default="placement_seed",
                   help="(gen) generator parameter swept over "
                        "start..start+count (default: placement_seed)")
    p.add_argument("--start", type=int, default=0,
                   help="(gen) first value of the swept axis")
    p.add_argument("--gen-param", action="append", metavar="KEY=VALUE",
                   help="(gen) fixed generator parameter (repeatable), "
                        "e.g. n_zigbee_links=6")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "serve",
        help="run the coordination job server (submit/status/result/watch)",
        description="Long-running asyncio job server: accepts experiment "
                    "submissions over a local ND-JSON socket, multiplexes "
                    "them across a bounded worker pool with per-client "
                    "fair priority scheduling and explicit backpressure, "
                    "and serves results by content fingerprint from the "
                    "sweep cache. SIGTERM drains gracefully; queued and "
                    "interrupted jobs resume on the next start.",
    )
    p.add_argument("--state-dir", default="server-state",
                   help="journal + discovery (server.json) directory")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = ephemeral; see server.json)")
    p.add_argument("--workers", type=_positive_int, default=2,
                   help="worker processes = concurrent-job ceiling")
    p.add_argument("--queue-depth", type=_positive_int, default=16,
                   help="max queued jobs before submissions are rejected "
                        "with a retry-after hint")
    p.add_argument("--cache-dir", default=None,
                   help="sweep cache directory (default: "
                        "$BICORD_SWEEP_CACHE or ~/.cache/bicord/sweeps)")
    p.add_argument("--backend", choices=("heap", "calendar"), default=None,
                   help="scheduler backend shipped to worker trials")
    p.add_argument("--snapshot-interval", type=float, default=0.5,
                   help="seconds between telemetry frames on watch streams")
    p.add_argument("--drain-grace", type=float, default=30.0,
                   help="seconds SIGTERM waits for in-flight jobs")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the startup banner and log output")
    p.add_argument("-v", "--verbose", action="count", default=0,
                   help="more logging (repeatable)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "list", help="list registered experiments and library scenarios"
    )
    p.set_defaults(func=cmd_list)

    p = sub.add_parser(
        "scenario",
        parents=shared,
        help="list, describe, or run library scenarios (repro.scenarios)",
        description="Library scenarios are declarative ScenarioSpecs; "
                    "`run` compiles one with a seed and reports its metrics, "
                    "`describe` prints the resolved spec + fingerprint.",
    )
    p.add_argument("action", choices=("list", "describe", "run"))
    p.add_argument("name", nargs="?", default=None,
                   help="scenario name (see `scenario list`)")
    p.add_argument("--set", action="append", metavar="KEY=VALUE",
                   help="scenario factory parameter override (repeatable)")
    p.add_argument("--duration", type=float, default=None,
                   help="override the scenario's duration in seconds")
    p.add_argument("--max-events", type=int, default=None,
                   help="cap the simulated event count (smoke runs)")
    p.add_argument("--fault-plan", default=None, metavar="NAME",
                   help="named fault plan or '<dimension>:<rate>'")
    p.set_defaults(func=cmd_scenario)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(
        verbosity=getattr(args, "verbose", 0),
        quiet=getattr(args, "quiet", False),
    )
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

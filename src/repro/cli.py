"""Command-line interface: run BiCord scenarios without writing code.

Examples::

    python -m repro.cli coexist --scheme bicord --location A --bursts 30
    python -m repro.cli coexist --scheme ecc --ecc-whitespace 20
    python -m repro.cli signaling --location C --power -1 --packets 4
    python -m repro.cli learning --packets 10 --step 30
    python -m repro.cli cti
    python -m repro.cli priority --proportion 0.3 --scheme bicord
    python -m repro.cli energy
    python -m repro.cli ble --no-afh

Every subcommand prints a small table of the metrics the paper reports for
that scenario.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (
    CoexistenceConfig,
    format_table,
    run_ble_coexistence,
    run_coexistence,
    run_cti_accuracy,
    run_device_identification,
    run_energy_trial,
    run_learning_trial,
    run_priority_experiment,
    run_signaling_trial,
)


def _print(title: str, rows, headers=("metric", "value")) -> None:
    print(format_table(headers, rows, title=title, float_format="{:.4f}"))


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_coexist(args: argparse.Namespace) -> int:
    if args.config:
        from .serialization import loads

        with open(args.config, "r", encoding="utf-8") as handle:
            config = loads(CoexistenceConfig, handle.read())
    else:
        config = CoexistenceConfig(
            scheme=args.scheme,
            location=args.location,
            seed=args.seed,
            burst_packets=args.packets,
            payload_bytes=args.payload,
            burst_interval=args.interval,
            poisson=not args.periodic,
            n_bursts=args.bursts,
            ecc_whitespace=args.ecc_whitespace * 1e-3,
            mobility=args.mobility,
        )
    if args.dump_config:
        from .serialization import dumps

        print(dumps(config))
        return 0
    result = run_coexistence(config)
    _print(
        f"coexistence: {config.scheme} at location {config.location}",
        [
            ["channel utilization", result.channel_utilization],
            ["zigbee utilization", result.zigbee_utilization],
            ["wifi utilization", result.wifi_utilization],
            ["mean zigbee delay (ms)", result.mean_delay * 1e3],
            ["p95 zigbee delay (ms)", result.p95_delay * 1e3],
            ["zigbee throughput (kbps)", result.zigbee_throughput_bps / 1e3],
            ["delivery ratio", result.delivery_ratio],
            ["control packets", float(result.control_packets)],
            ["white spaces issued", float(result.whitespaces_issued)],
        ],
    )
    return 0


def cmd_signaling(args: argparse.Namespace) -> int:
    result = run_signaling_trial(
        location=args.location,
        power_dbm=args.power,
        n_control_packets=args.packets,
        n_salvos=args.salvos,
        seed=args.seed,
    )
    _print(
        f"signaling: location {args.location}, {args.power:+.0f} dBm, "
        f"{args.packets} control packets",
        [
            ["precision", result.pr.precision],
            ["recall", result.pr.recall],
            ["true positives", float(result.pr.true_positives)],
            ["false positives", float(result.pr.false_positives)],
            ["wifi PRR during trial", result.wifi_prr],
        ],
    )
    return 0


def cmd_learning(args: argparse.Namespace) -> int:
    result = run_learning_trial(
        n_packets=args.packets,
        step=args.step * 1e-3,
        location=args.location,
        n_bursts=args.bursts,
        seed=args.seed,
    )
    _print(
        f"white-space learning: {args.packets}-packet bursts, {args.step:.0f} ms step",
        [
            ["converged", float(result.converged)],
            ["iterations", float(result.iterations)],
            ["final white space (ms)", result.final_whitespace * 1e3],
            ["burst airtime (ms)", result.burst_airtime * 1e3],
        ],
    )
    trajectory = ", ".join(f"{g * 1e3:.0f}" for g in result.trajectory[:20])
    print(f"trajectory (ms): {trajectory}")
    return 0


def cmd_cti(args: argparse.Namespace) -> int:
    cti = run_cti_accuracy(n_traces=args.traces, seed=args.seed)
    device = run_device_identification(n_traces=args.traces, seed=args.seed)
    _print(
        "CTI detection",
        [
            ["wifi detection accuracy (paper 0.9639)", cti.wifi_detection_accuracy],
            ["multiclass accuracy", cti.multiclass_accuracy],
            ["device identification (paper 0.8976)", device.accuracy],
        ],
    )
    return 0


def cmd_priority(args: argparse.Namespace) -> int:
    result = run_priority_experiment(
        args.scheme,
        high_proportion=args.proportion,
        total_duration=args.duration,
        seed=args.seed,
    )
    _print(
        f"priority traffic: {args.scheme}, high-priority share {args.proportion}",
        [
            ["channel utilization", result.utilization],
            ["zigbee utilization", result.zigbee_utilization],
            ["low-priority wifi delay (ms)", result.low_priority_wifi_delay * 1e3],
            ["high-priority wifi delay (ms)", result.high_priority_wifi_delay * 1e3],
            ["zigbee mean delay (ms)", result.zigbee_mean_delay * 1e3],
        ],
    )
    return 0


def cmd_energy(args: argparse.Namespace) -> int:
    result = run_energy_trial(n_bursts=args.bursts, seed=args.seed)
    _print(
        "energy overhead (paper: 10-21%)",
        [
            ["bicord under wifi (mJ)", result.bicord_mj],
            ["clear channel (mJ)", result.clear_channel_mj],
            ["overhead (%)", result.overhead_fraction * 100.0],
            ["control packets", float(result.control_packets)],
        ],
    )
    return 0


def cmd_ble(args: argparse.Namespace) -> int:
    result = run_ble_coexistence(
        afh_enabled=args.afh, duration=args.duration, seed=args.seed
    )
    _print(
        f"ZigBee/BLE coexistence (AFH {'on' if args.afh else 'off'})",
        [
            ["ble event success rate", result.ble_success_rate],
            ["ble late-window success", result.ble_late_success_rate],
            ["excluded channels", float(len(result.excluded_channels))],
            ["zigbee delivery ratio", result.zigbee_delivery_ratio],
            ["zigbee mean delay (ms)", result.zigbee_mean_delay * 1e3],
        ],
    )
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="BiCord reproduction scenarios"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--location", choices="ABCD", default="A")

    p = sub.add_parser("coexist", help="one coexistence run (Fig. 10/11 style)")
    common(p)
    p.add_argument("--scheme",
                   choices=("bicord", "ecc", "csma", "predictive", "slow-ctc"),
                   default="bicord")
    p.add_argument("--bursts", type=int, default=30)
    p.add_argument("--packets", type=int, default=5)
    p.add_argument("--payload", type=int, default=50)
    p.add_argument("--interval", type=float, default=0.2,
                   help="mean burst interval in seconds")
    p.add_argument("--periodic", action="store_true",
                   help="fixed intervals instead of Poisson")
    p.add_argument("--ecc-whitespace", type=float, default=20.0,
                   help="ECC white space in ms")
    p.add_argument("--mobility", choices=("none", "person", "device"),
                   default="none")
    p.add_argument("--config", metavar="FILE",
                   help="load the full CoexistenceConfig from a JSON file "
                        "(overrides the other options)")
    p.add_argument("--dump-config", action="store_true",
                   help="print the effective config as JSON and exit")
    p.set_defaults(func=cmd_coexist)

    p = sub.add_parser("signaling", help="precision/recall trial (Tables I-II)")
    common(p)
    p.add_argument("--power", type=float, default=0.0)
    p.add_argument("--packets", type=int, default=4)
    p.add_argument("--salvos", type=int, default=100)
    p.set_defaults(func=cmd_signaling)

    p = sub.add_parser("learning", help="white-space learning (Figs. 7-9)")
    common(p)
    p.add_argument("--packets", type=int, default=10)
    p.add_argument("--step", type=float, default=30.0, help="initial step in ms")
    p.add_argument("--bursts", type=int, default=14)
    p.set_defaults(func=cmd_learning)

    p = sub.add_parser("cti", help="CTI detection accuracy (Sec. VII-A)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--traces", type=int, default=60)
    p.set_defaults(func=cmd_cti)

    p = sub.add_parser("priority", help="prioritized Wi-Fi traffic (Fig. 13)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scheme", choices=("bicord", "ecc"), default="bicord")
    p.add_argument("--proportion", type=float, default=0.3)
    p.add_argument("--duration", type=float, default=6.0)
    p.set_defaults(func=cmd_priority)

    p = sub.add_parser("energy", help="energy overhead (Sec. VII-B)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--bursts", type=int, default=8)
    p.set_defaults(func=cmd_energy)

    p = sub.add_parser("ble", help="ZigBee/BLE extension (Sec. VII-D)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duration", type=float, default=10.0)
    p.add_argument("--afh", dest="afh", action="store_true", default=True)
    p.add_argument("--no-afh", dest="afh", action="store_false")
    p.set_defaults(func=cmd_ble)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""CART decision tree (from scratch).

The paper's CTI detector feeds four RSSI-trace features to "a decision tree
model" (ZiSense-style).  We implement a small, dependency-free CART
classifier: binary splits on feature thresholds chosen by Gini impurity,
depth- and leaf-size-limited to avoid overfitting the synthetic traces.

The implementation is vectorized with numpy where it matters (threshold
scanning) but keeps the tree itself as plain nested nodes for readability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass
class _Node:
    """Internal tree node; leaves carry a prediction, splits carry a rule."""

    prediction: Optional[int] = None
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["_Node"] = None  # feature value <= threshold
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.prediction is not None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


class DecisionTreeClassifier:
    """Binary-split CART classifier for integer class labels.

    Parameters mirror the scikit-learn names so downstream code reads
    naturally: ``max_depth`` bounds the tree, ``min_samples_split`` and
    ``min_samples_leaf`` stop early, ``n_classes`` is inferred from ``fit``.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self._root: Optional[_Node] = None
        self.n_classes_: int = 0
        self.n_features_: int = 0

    # ------------------------------------------------------------------
    def fit(self, X: Sequence[Sequence[float]], y: Sequence[int]) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError("X and y lengths differ")
        if len(X) == 0:
            raise ValueError("cannot fit an empty dataset")
        if y.min() < 0:
            raise ValueError("labels must be non-negative integers")
        self.n_classes_ = int(y.max()) + 1
        self.n_features_ = X.shape[1]
        self._root = self._build(X, y, depth=0)
        return self

    def _class_counts(self, y: np.ndarray) -> np.ndarray:
        return np.bincount(y, minlength=self.n_classes_)

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        counts = self._class_counts(y)
        majority = int(np.argmax(counts))
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or _gini(counts) == 0.0
        ):
            return _Node(prediction=majority)
        split = self._best_split(X, y)
        if split is None:
            return _Node(prediction=majority)
        feature, threshold = split
        mask = X[:, feature] <= threshold
        left = self._build(X[mask], y[mask], depth + 1)
        right = self._build(X[~mask], y[~mask], depth + 1)
        return _Node(feature=feature, threshold=threshold, left=left, right=right)

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        best_gain = 1e-12
        best = None
        parent_impurity = _gini(self._class_counts(y))
        n = len(y)
        for feature in range(self.n_features_):
            values = X[:, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            sorted_y = y[order]
            # Candidate thresholds: midpoints between distinct adjacent values.
            distinct = np.nonzero(np.diff(sorted_values) > 0)[0]
            if len(distinct) == 0:
                continue
            left_counts = np.zeros(self.n_classes_)
            prev_idx = 0
            for idx in distinct:
                boundary = idx + 1
                left_counts += np.bincount(
                    sorted_y[prev_idx:boundary], minlength=self.n_classes_
                )
                prev_idx = boundary
                n_left = boundary
                n_right = n - boundary
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                right_counts = self._class_counts(y) - left_counts
                weighted = (n_left / n) * _gini(left_counts) + (n_right / n) * _gini(
                    right_counts
                )
                gain = parent_impurity - weighted
                if gain > best_gain:
                    best_gain = gain
                    threshold = 0.5 * (sorted_values[idx] + sorted_values[idx + 1])
                    best = (feature, float(threshold))
        return best

    # ------------------------------------------------------------------
    def predict_one(self, x: Sequence[float]) -> int:
        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        node = self._root
        while not node.is_leaf:
            assert node.feature is not None and node.threshold is not None
            node = node.left if x[node.feature] <= node.threshold else node.right
            assert node is not None
        assert node.prediction is not None
        return node.prediction

    def predict(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        return np.asarray([self.predict_one(x) for x in np.asarray(X, dtype=float)])

    def score(self, X: Sequence[Sequence[float]], y: Sequence[int]) -> float:
        """Accuracy on a labeled set."""
        predictions = self.predict(X)
        y = np.asarray(y, dtype=int)
        return float(np.mean(predictions == y))

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        return walk(self._root)

"""k-means clustering with Manhattan distance (from scratch).

Smoggy-Link-style Wi-Fi transmitter identification clusters RSSI
fingerprints "based on the Manhattan distance between their fingerprints"
(Sec. VII-A).  Plain k-means minimizes squared Euclidean distance; the
Manhattan variant (k-medians) updates each center coordinate to the
*median* of its members, which is the L1-optimal center.

Initialization is k-means++-style (distance-weighted seeding) on a caller
supplied RNG so clustering is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


def manhattan_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Pairwise L1 distances: (n_points, n_centers)."""
    return np.abs(points[:, None, :] - centers[None, :, :]).sum(axis=2)


@dataclass
class KMeansResult:
    centers: np.ndarray
    labels: np.ndarray
    inertia: float  # sum of L1 distances to assigned centers
    iterations: int


class KMeans:
    """L1 (Manhattan) k-means / k-medians."""

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 100,
        tol: float = 1e-6,
        n_init: int = 8,
        rng: Optional[np.random.Generator] = None,
    ):
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if n_init < 1:
            raise ValueError("n_init must be >= 1")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.n_init = n_init
        self.rng = rng or np.random.default_rng(0)
        self.result: Optional[KMeansResult] = None

    # ------------------------------------------------------------------
    def _init_centers(self, X: np.ndarray) -> np.ndarray:
        """k-means++ seeding with L1 distances."""
        n = len(X)
        centers = np.empty((self.n_clusters, X.shape[1]))
        first = int(self.rng.integers(0, n))
        centers[0] = X[first]
        for k in range(1, self.n_clusters):
            distances = manhattan_distances(X, centers[:k]).min(axis=1)
            total = distances.sum()
            if total <= 0.0:
                # All points coincide with chosen centers; pick arbitrarily.
                centers[k] = X[int(self.rng.integers(0, n))]
                continue
            probabilities = distances / total
            choice = int(self.rng.choice(n, p=probabilities))
            centers[k] = X[choice]
        return centers

    def fit(self, X: Sequence[Sequence[float]]) -> KMeansResult:
        """Run ``n_init`` seeded restarts and keep the lowest-inertia result."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) < self.n_clusters:
            raise ValueError(
                f"need at least {self.n_clusters} points, got {len(X)}"
            )
        best: Optional[KMeansResult] = None
        for _ in range(self.n_init):
            result = self._fit_once(X)
            if best is None or result.inertia < best.inertia:
                best = result
        self.result = best
        return best

    def _fit_once(self, X: np.ndarray) -> KMeansResult:
        centers = self._init_centers(X)
        labels = np.zeros(len(X), dtype=int)
        iterations = 0
        for iterations in range(1, self.max_iter + 1):
            distances = manhattan_distances(X, centers)
            labels = distances.argmin(axis=1)
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                members = X[labels == k]
                if len(members) == 0:
                    # Re-seed an empty cluster at the worst-served point.
                    worst = distances.min(axis=1).argmax()
                    new_centers[k] = X[worst]
                else:
                    new_centers[k] = np.median(members, axis=0)
            shift = np.abs(new_centers - centers).max()
            centers = new_centers
            if shift <= self.tol:
                break
        distances = manhattan_distances(X, centers)
        labels = distances.argmin(axis=1)
        inertia = float(distances[np.arange(len(X)), labels].sum())
        return KMeansResult(centers, labels, inertia, iterations)

    def predict(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        if self.result is None:
            raise RuntimeError("KMeans is not fitted")
        X = np.asarray(X, dtype=float)
        return manhattan_distances(X, self.result.centers).argmin(axis=1)


def clustering_accuracy(labels: np.ndarray, truth: np.ndarray) -> float:
    """Best-assignment accuracy of a clustering against ground truth.

    Cluster indices are arbitrary, so we greedily map each cluster to its
    majority true class and score the resulting labeling.  (A Hungarian
    assignment would be optimal; greedy majority is the standard metric for
    small k and is exact when clusters are dominated by one class.)
    """
    labels = np.asarray(labels)
    truth = np.asarray(truth)
    if labels.shape != truth.shape:
        raise ValueError("labels and truth must have the same shape")
    correct = 0
    for cluster in np.unique(labels):
        members = truth[labels == cluster]
        values, counts = np.unique(members, return_counts=True)
        correct += int(counts.max())
    return correct / len(labels)

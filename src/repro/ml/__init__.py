"""Small from-scratch ML substrate: CART decision tree, L1 k-means."""

from .decision_tree import DecisionTreeClassifier
from .kmeans import KMeans, KMeansResult, clustering_accuracy, manhattan_distances

__all__ = [
    "DecisionTreeClassifier",
    "KMeans",
    "KMeansResult",
    "clustering_accuracy",
    "manhattan_distances",
]
